// Network-addressed internal registers (paper section 2.1).
//
// "The network also presents a number of registers that can be used to
// reserve resources for particular virtual channels... to provide time-slot
// reservations for certain classes of traffic." The paper leaves the
// programming interface out of scope; we define a faithful one: a register
// write is an ordinary single-flit packet addressed to a node, carrying a
// magic word; the network installs a delivery filter at every NIC that
// decodes such packets and applies them to the local router's reservation
// tables. Setup software thus programs the whole fabric over the fabric
// itself, exactly as a real system would at configuration time.
#pragma once

#include <cstdint>
#include <optional>

#include "core/interface.h"
#include "topo/topology.h"

namespace ocn::core {

struct RegisterWrite {
  enum class Kind : std::uint8_t { kReserveSlot, kClearSlot };
  Kind kind = Kind::kReserveSlot;
  topo::Port output_port = topo::Port::kRowPos;  ///< which output controller
  int slot = 0;                                  ///< frame slot index
  int input_port = 0;                            ///< reserved input
  VcId vc = 0;                                   ///< reserved (scheduled) VC
};

/// Encode a register write as a packet payload / decode it back.
/// decode returns nullopt for packets that are not register writes.
Packet encode_register_write(NodeId target, const RegisterWrite& write);
std::optional<RegisterWrite> decode_register_write(const Packet& packet);

/// Register read-back: a configuration master can query any router's
/// reservation slot over the network and receives a response datagram.
struct RegisterRead {
  topo::Port output_port = topo::Port::kRowPos;
  int slot = 0;
  std::uint32_t req_id = 0;
};

struct RegisterReadResponse {
  std::uint32_t req_id = 0;
  bool reserved = false;
  int input_port = -1;
  VcId vc = kInvalidVc;
};

Packet encode_register_read(NodeId target, const RegisterRead& read);
std::optional<RegisterRead> decode_register_read(const Packet& packet);
Packet encode_register_read_response(NodeId requester, const RegisterReadResponse& rsp);
std::optional<RegisterReadResponse> decode_register_read_response(const Packet& packet);

}  // namespace ocn::core
