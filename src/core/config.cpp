#include "core/config.h"

#include <stdexcept>

#include "routing/source_route.h"
#include "topo/folded_torus.h"
#include "topo/mesh.h"
#include "topo/torus.h"

namespace ocn::core {

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kFoldedTorus: return "folded_torus";
  }
  return "?";
}

std::unique_ptr<topo::Topology> Config::make_topology() const {
  switch (topology) {
    case TopologyKind::kMesh:
      return std::make_unique<topo::Mesh>(radix, tech.tile_mm);
    case TopologyKind::kTorus:
      return std::make_unique<topo::Torus>(radix, tech.tile_mm);
    case TopologyKind::kFoldedTorus:
      return std::make_unique<topo::FoldedTorus>(radix, tech.tile_mm);
  }
  throw std::invalid_argument("unknown topology kind");
}

void Config::validate() const {
  auto fail = [](const std::string& why) { throw std::invalid_argument("Config: " + why); };
  if (radix < 2) {
    fail("radix " + std::to_string(radix) + " is below the 2x2 minimum");
  }
  if (router.vcs < 1 || router.vcs > 8) {
    fail("vcs = " + std::to_string(router.vcs) +
         "; the 8-bit VC mask in the flit header supports 1..8 virtual channels");
  }
  if (router.buffer_depth < 1) {
    fail("buffer_depth = " + std::to_string(router.buffer_depth) +
         "; every VC needs at least one buffer slot");
  }
  if (link_latency < 1) {
    fail("link_latency = " + std::to_string(link_latency) +
         "; links are registered, so latency must be >= 1 cycle");
  }
  if (flit_data_bits < 1 || flit_data_bits > 256) {
    fail("flit_data_bits = " + std::to_string(flit_data_bits) +
         " outside [1,256] (the paper's maximum flit payload)");
  }
  if (interface_partitions < 1 || flit_data_bits % interface_partitions != 0) {
    fail("interface_partitions = " + std::to_string(interface_partitions) +
         " must be >= 1 and divide flit_data_bits = " +
         std::to_string(flit_data_bits));
  }
  if (router.scheduled_vc < 0 || router.scheduled_vc >= router.vcs) {
    fail("scheduled_vc = " + std::to_string(router.scheduled_vc) +
         " does not name one of the " + std::to_string(router.vcs) + " VCs");
  }
  const bool wraparound = topology != TopologyKind::kMesh;
  if (wraparound && router.flow_control == router::FlowControl::kVirtualChannel &&
      !router.enforce_vc_parity) {
    fail(std::string(topology_kind_name(topology)) +
         " has wraparound rings, so VC flow control needs the dateline "
         "discipline: set router.enforce_vc_parity (run ocn-verify to see the "
         "channel-dependency cycle this rule prevents)");
  }
  if (router.enforce_vc_parity && router.vcs % 2 != 0) {
    fail("enforce_vc_parity pairs VCs as {2c, 2c+1}, so vcs = " +
         std::to_string(router.vcs) + " must be even (or disable parity)");
  }
  if (router.enforce_vc_parity && router.dropping()) {
    fail("dropping flow control keeps a packet's injection VC on every hop, "
         "which contradicts the dateline parity discipline: disable "
         "router.enforce_vc_parity when using FlowControl::kDropping");
  }
  // The longest dimension-ordered route must fit the source-route encoder
  // (SourceRoute::kMaxEntries entries): worst case is one full traversal
  // per dimension plus the extract entry.
  const int per_dim = wraparound ? radix / 2 : radix - 1;
  const int worst_entries = 2 * per_dim + 1;
  if (worst_entries > routing::SourceRoute::kMaxEntries) {
    fail("radix " + std::to_string(radix) + " " + topology_kind_name(topology) +
         " needs up to " + std::to_string(worst_entries) +
         " route entries, above the " +
         std::to_string(routing::SourceRoute::kMaxEntries) +
         "-entry source-route encoder; reduce the radix" +
         (wraparound ? "" : " or use a wraparound topology (shorter worst-case "
                            "routes)"));
  }
  if (router.reservation_frame < 1) {
    fail("reservation_frame = " + std::to_string(router.reservation_frame) +
         "; the cyclic reservation table needs at least one slot");
  }
  if (link_spare_bits < 0) {
    fail("link_spare_bits = " + std::to_string(link_spare_bits) +
         " cannot be negative");
  }
  if (nic_queue_packets < 1) {
    fail("nic_queue_packets = " + std::to_string(nic_queue_packets) +
         "; the NIC needs at least one injection-queue slot");
  }
}

std::string Config::summary() const {
  std::string s;
  s += "topology=";
  s += topology_kind_name(topology);
  auto field = [&s](const char* name, auto value) {
    s += ' ';
    s += name;
    s += '=';
    s += std::to_string(value);
  };
  field("radix", radix);
  field("vcs", router.vcs);
  field("depth", router.buffer_depth);
  field("flow_control", static_cast<int>(router.flow_control));
  field("vc_parity", router.enforce_vc_parity ? 1 : 0);
  field("priority_arb", router.priority_arbitration ? 1 : 0);
  field("piggyback", router.piggyback_credits ? 1 : 0);
  field("speculative", router.speculative ? 1 : 0);
  field("frame", router.reservation_frame);
  field("reclaim_idle", router.reclaim_idle_slots ? 1 : 0);
  field("sched_vc", router.scheduled_vc);
  field("excl_sched", router.exclusive_scheduled_vc ? 1 : 0);
  field("link_latency", link_latency);
  field("flit_bits", flit_data_bits);
  field("partitions", interface_partitions);
  field("fault_layer", fault_layer ? 1 : 0);
  field("spare_bits", link_spare_bits);
  field("nic_queue", nic_queue_packets);
  field("seed", seed);
  return s;
}

std::uint64_t Config::fingerprint() const {
  // FNV-1a, 64-bit: stable across platforms and builds, unlike std::hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : summary()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Config Config::paper_baseline() {
  Config c;
  c.topology = TopologyKind::kFoldedTorus;
  c.radix = 4;
  c.router.vcs = 8;
  c.router.buffer_depth = 4;
  c.router.enforce_vc_parity = true;
  c.flit_data_bits = 256;
  return c;
}

}  // namespace ocn::core
