#include "core/config.h"

#include <stdexcept>

#include "topo/folded_torus.h"
#include "topo/mesh.h"
#include "topo/torus.h"

namespace ocn::core {

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kFoldedTorus: return "folded_torus";
  }
  return "?";
}

std::unique_ptr<topo::Topology> Config::make_topology() const {
  switch (topology) {
    case TopologyKind::kMesh:
      return std::make_unique<topo::Mesh>(radix, tech.tile_mm);
    case TopologyKind::kTorus:
      return std::make_unique<topo::Torus>(radix, tech.tile_mm);
    case TopologyKind::kFoldedTorus:
      return std::make_unique<topo::FoldedTorus>(radix, tech.tile_mm);
  }
  throw std::invalid_argument("unknown topology kind");
}

void Config::validate() const {
  auto fail = [](const std::string& why) { throw std::invalid_argument("Config: " + why); };
  if (radix < 2) fail("radix must be >= 2");
  if (router.vcs < 1 || router.vcs > 8) fail("vcs must be in [1,8] (8-bit VC mask)");
  if (router.buffer_depth < 1) fail("buffer_depth must be >= 1");
  if (link_latency < 1) fail("link_latency must be >= 1");
  if (flit_data_bits < 1 || flit_data_bits > 256) fail("flit_data_bits must be in [1,256]");
  if (interface_partitions < 1 || flit_data_bits % interface_partitions != 0) {
    fail("interface_partitions must divide flit_data_bits");
  }
  if (router.scheduled_vc < 0 || router.scheduled_vc >= router.vcs) {
    fail("scheduled_vc out of range");
  }
  const bool wraparound = topology != TopologyKind::kMesh;
  if (wraparound && router.flow_control == router::FlowControl::kVirtualChannel &&
      !router.enforce_vc_parity) {
    fail("wraparound topologies require enforce_vc_parity (dateline deadlock avoidance)");
  }
  if (router.enforce_vc_parity && router.vcs % 2 != 0) {
    fail("enforce_vc_parity requires an even VC count (VC class pairs)");
  }
  if (router.reservation_frame < 1) fail("reservation_frame must be >= 1");
  if (link_spare_bits < 0) fail("link_spare_bits must be >= 0");
  if (nic_queue_packets < 1) fail("nic_queue_packets must be >= 1");
}

Config Config::paper_baseline() {
  Config c;
  c.topology = TopologyKind::kFoldedTorus;
  c.radix = 4;
  c.router.vcs = 8;
  c.router.buffer_depth = 4;
  c.router.enforce_vc_parity = true;
  c.flit_data_bits = 256;
  return c;
}

}  // namespace ocn::core
