// Flit-level event tracing.
//
// When enabled on a Network, every link traversal (including tile
// injection/ejection channels and reserved-slot bypasses) is recorded as a
// TraceEvent. The recorder keeps events in memory and can render a CSV for
// offline analysis, or a per-packet journey for debugging. Tracing is off
// by default and costs one untaken branch per link send when disabled.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "router/flit.h"
#include "topo/topology.h"

namespace ocn::core {

struct TraceEvent {
  Cycle cycle = 0;
  NodeId node = kInvalidNode;   ///< router driving the link
  topo::Port port = topo::Port::kTile;
  PacketId packet = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  VcId vc = 0;
  router::FlitType type = router::FlitType::kHeadTail;
  int flit_index = 0;
  bool bypass = false;  ///< pre-scheduled bypass traversal
};

class TraceRecorder {
 public:
  void record(TraceEvent event) { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Every traversal of one packet, in time order.
  std::vector<TraceEvent> packet_journey(PacketId id) const;

  /// CSV rendering: cycle,node,port,packet,src,dst,vc,type,flit,bypass
  std::string to_csv() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace ocn::core
