#include "core/nic.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/log.h"

namespace ocn::core {

using router::Credit;
using router::Flit;
using router::FlitType;

Nic::Nic(NodeId node, const Config& config, const routing::RouteComputer& routes)
    : node_(node),
      config_(config),
      routes_(routes),
      vc_queues_(static_cast<std::size_t>(config.router.vcs)),
      queued_packets_per_class_(4, 0),
      credits_(static_cast<std::size_t>(config.router.vcs), config.router.buffer_depth),
      inject_arb_(config.router.vcs),
      eject_pending_(static_cast<std::size_t>(config.router.vcs)),
      eject_stalled_(static_cast<std::size_t>(config.router.vcs), false),
      eject_arb_(config.router.vcs),
      reassembly_(static_cast<std::size_t>(config.router.vcs)),
      req_scratch_(static_cast<std::size_t>(config.router.vcs), 0),
      prio_scratch_(static_cast<std::size_t>(config.router.vcs), 0),
      next_packet_id_(static_cast<PacketId>(node) << 40),
      class_latency_(4) {}

bool Nic::quiescent() const {
  // The arrival bytes are set exactly when the corresponding channel holds
  // a delivered value (see the member comment), so these two loads replace
  // the channel-object probes.
  if (inj_credit_arrive_.load(std::memory_order_relaxed) != 0) return false;
  if (eject_arrive_.load(std::memory_order_relaxed) != 0) return false;
  if (!loopback_.empty() || !carry_to_router_.empty()) return false;
  return queued_flit_count_ == 0 && eject_pending_count_ == 0;
}

void Nic::attach(Channel<Flit>* inject, Channel<Credit>* inject_credit,
                 Channel<Flit>* eject, Channel<Credit>* eject_credit) {
  inject_ = inject;
  inject_credit_ = inject_credit;
  eject_ = eject;
  eject_credit_ = eject_credit;
  if (inject_credit_ != nullptr) inject_credit_->set_wake(&inj_credit_arrive_);
  if (eject_ != nullptr) eject_->set_wake(&eject_arrive_);
}

std::uint8_t Nic::ready_mask() const {
  std::uint8_t mask = 0;
  for (std::size_t v = 0; v < credits_.size(); ++v) {
    const bool ready = config_.router.dropping() || credits_[v] > 0;
    if (ready) mask |= static_cast<std::uint8_t>(1u << v);
  }
  return mask;
}

void Nic::set_ejection_stall(VcId vc, bool stalled) {
  eject_stalled_[static_cast<std::size_t>(vc)] = stalled;
}

void Nic::enqueue_packet_flits(Packet& packet, Cycle now, Cycle send_at) {
  const bool scheduled = send_at >= 0;
  const VcId inject_vc =
      scheduled ? config_.router.scheduled_vc
                : static_cast<VcId>(2 * packet.service_class);
  assert(inject_vc < config_.router.vcs);

  packet.src = node_;
  packet.id = ++next_packet_id_;
  packet.created = now;

  const int n = packet.num_flits();
  for (int i = 0; i < n; ++i) {
    Flit f;
    if (n == 1) {
      f.type = FlitType::kHeadTail;
    } else if (i == 0) {
      f.type = FlitType::kHead;
    } else if (i == n - 1) {
      f.type = FlitType::kTail;
    } else {
      f.type = FlitType::kBody;
    }
    f.vc = inject_vc;
    f.vc_mask = vc_mask_for_class(packet.service_class);
    f.size_code = (i == n - 1) ? static_cast<std::uint8_t>(
                                     router::size_code_for_bits(packet.last_flit_bits))
                               : static_cast<std::uint8_t>(router::kMaxSizeCode);
    if (router::is_head(f.type)) f.route = routes_.compute(node_, packet.dst);
    f.data = packet.flit_payloads[static_cast<std::size_t>(i)];
    f.packet = packet.id;
    f.src = node_;
    f.dst = packet.dst;
    f.flit_index = i;
    f.packet_flits = n;
    f.created = packet.created;
    f.injected = now;  // refined when the flit actually departs
    f.priority = scheduled ? 1000 : packet.service_class;
    vc_queues_[static_cast<std::size_t>(inject_vc)].push_back(
        QueuedFlit{std::move(f), send_at});
    ++queued_flit_count_;
    if (scheduled) ++scheduled_flit_count_;
  }
}

bool Nic::inject(Packet packet, Cycle now) {
  assert(packet.dst >= 0 && packet.dst < routes_.topology().num_nodes());
  assert(packet.service_class >= 0 && packet.service_class < 4);
  assert(static_cast<VcId>(2 * packet.service_class + 1) < config_.router.vcs ||
         config_.router.vcs == 1);
  if (config_.router.exclusive_scheduled_vc &&
      packet.service_class == config_.router.scheduled_vc / 2) {
    // The scheduled VC pair belongs to pre-scheduled traffic: a dynamic
    // packet of this class could never allocate the excluded odd VC after
    // a dateline crossing and would wedge its wormhole forever.
    throw std::logic_error(
        "Nic::inject: the scheduled service class is reserved for "
        "pre-scheduled traffic when exclusive_scheduled_vc is set");
  }

  if (packet.dst == node_) {
    // Self-delivery short-circuits the network (the route encoding has no
    // zero-hop form; see routing/source_route.h).
    packet.src = node_;
    packet.id = ++next_packet_id_;
    packet.created = now;
    packet.injected = now;
    ++packets_injected_;
    flits_injected_ += packet.num_flits();
    loopback_.emplace_back(std::move(packet), now + 1);
    return true;
  }

  auto& count = queued_packets_per_class_[static_cast<std::size_t>(packet.service_class)];
  if (count >= config_.nic_queue_packets) {
    ++queue_rejects_;
    return false;
  }
  ++count;
  enqueue_packet_flits(packet, now, /*send_at=*/-1);
  return true;
}

void Nic::schedule_packet(Packet packet, Cycle send_at, Cycle now) {
  assert(packet.num_flits() == 1 && "scheduled traffic uses single-flit packets");
  assert(packet.dst != node_);
  packet.scheduled = true;
  enqueue_packet_flits(packet, now, send_at);
}

void Nic::step(Cycle now) {
  // Credits returned by the tile input controller (arrival-byte gated; see
  // quiescent()).
  if (inject_credit_ != nullptr &&
      inj_credit_arrive_.load(std::memory_order_relaxed) != 0) {
    inj_credit_arrive_.store(0, std::memory_order_relaxed);
    if (auto credit = inject_credit_->take()) {
      if (!config_.router.dropping()) {
        auto& c = credits_[static_cast<std::size_t>(credit->vc)];
        ++c;
        assert(c <= config_.router.buffer_depth);
      }
    }
  }
  process_ejection(now);
  do_injection(now);
  while (!loopback_.empty() && loopback_.front().second <= now) {
    Packet p = std::move(loopback_.front().first);
    loopback_.pop_front();
    p.delivered = now;
    ++packets_delivered_;
    flits_delivered_ += p.num_flits();
    latency_.add(static_cast<double>(p.latency()));
    network_latency_.add(static_cast<double>(p.network_latency()));
    hops_.add(0.0);
    link_mm_.add(0.0);
    class_latency_[static_cast<std::size_t>(p.service_class)].add(
        static_cast<double>(p.latency()));
    deliver(std::move(p));
  }
}

void Nic::process_ejection(Cycle now) {
  if (eject_ == nullptr) return;
  // Arrival-byte gated, in-place arrival handling (receive + consume): the
  // pending-queue copy goes straight from channel storage, skipping the
  // take() temporary.
  if (eject_arrive_.load(std::memory_order_relaxed) != 0) {
    eject_arrive_.store(0, std::memory_order_relaxed);
    const std::optional<Flit>& arriving = eject_->receive();
    if (arriving.has_value()) {
      const Flit& fl = *arriving;
      // Harvest a piggybacked credit for the tile input buffers upstream.
      const std::int8_t carried = fl.carried_credit_vc;
      if (carried >= 0 && !config_.router.dropping()) {
        auto& c = credits_[static_cast<std::size_t>(carried)];
        ++c;
        assert(c <= config_.router.buffer_depth);
      }
      if (fl.type != router::FlitType::kCreditOnly) {
        auto& q = eject_pending_[static_cast<std::size_t>(fl.vc)];
        q.push_back(fl);
        if (carried >= 0) q.back().carried_credit_vc = -1;
        ++eject_pending_count_;
      }
      eject_->consume();
    }
  }
  // Nothing parked: with every request bit zero the arbiter would return -1
  // and leave its pointer frozen, so skipping it is identical.
  if (eject_pending_count_ == 0) return;
  // Consume at most one flit per cycle (the physical port is one flit wide)
  // from a non-stalled VC, returning its credit.
  for (std::size_t v = 0; v < eject_pending_.size(); ++v) {
    req_scratch_[v] = !eject_pending_[v].empty() && !eject_stalled_[v] ? 1 : 0;
  }
  const int vc = eject_arb_.arbitrate(req_scratch_.data());
  if (vc < 0) return;
  Flit f = std::move(eject_pending_[static_cast<std::size_t>(vc)].front());
  eject_pending_[static_cast<std::size_t>(vc)].pop_front();
  --eject_pending_count_;
  if (!config_.router.dropping()) {
    if (config_.router.piggyback_credits) {
      carry_to_router_.push_back(static_cast<VcId>(vc));
    } else if (eject_credit_ != nullptr) {
      eject_credit_->send(Credit{static_cast<VcId>(vc)});
    }
  }
  consume_flit(std::move(f), now);
}

void Nic::consume_flit(Flit flit, Cycle now) {
  ++flits_delivered_;
  auto& r = reassembly_[static_cast<std::size_t>(flit.vc)];
  if (router::is_head(flit.type)) {
    assert(!r.active && "head flit while a packet is still being reassembled");
    r.active = true;
    r.head = flit;
    r.payloads.clear();
  }
  assert(r.active && "body/tail flit without a head");
  r.payloads.push_back(flit.data);
  if (!router::is_tail(flit.type)) return;

  Packet p;
  p.src = r.head.src;
  p.dst = r.head.dst;
  p.id = r.head.packet;
  p.service_class = flit.priority >= 1000 ? 3 : r.head.priority;
  p.scheduled = flit.priority >= 1000;
  p.flit_payloads = std::move(r.payloads);
  p.last_flit_bits = router::data_bits_for_code(flit.size_code);
  p.created = r.head.created;
  p.injected = r.head.injected;
  p.delivered = now;
  p.hops = flit.hops;
  p.link_mm = flit.link_mm;
  r = Reassembly{};

  ++packets_delivered_;
  latency_.add(static_cast<double>(p.latency()));
  network_latency_.add(static_cast<double>(p.network_latency()));
  hops_.add(static_cast<double>(p.hops));
  link_mm_.add(p.link_mm);
  class_latency_[static_cast<std::size_t>(p.service_class)].add(
      static_cast<double>(p.latency()));
  deliver(std::move(p));
}

void Nic::do_injection(Cycle now) {
  if (inject_ == nullptr) return;
  if (queued_flit_count_ == 0) {
    // Empty queues mean zero request bits: the arbiter would return -1 with
    // its pointer frozen, landing in the credit-only branch below — reached
    // here directly.
    if (config_.router.piggyback_credits && !carry_to_router_.empty()) {
      Flit f;
      f.type = FlitType::kCreditOnly;
      f.size_code = 0;
      f.carried_credit_vc = static_cast<std::int8_t>(carry_to_router_.front());
      carry_to_router_.pop_front();
      inject_->send(std::move(f));
    }
    return;
  }
  const int vcs = config_.router.vcs;
  std::uint8_t* requests = req_scratch_.data();
  int* priority = prio_scratch_.data();
  for (VcId v = 0; v < vcs; ++v) {
    requests[v] = 0;
    priority[v] = 0;
    auto& q = vc_queues_[static_cast<std::size_t>(v)];
    if (q.empty()) continue;
    if (scheduled_flit_count_ == 0) {
      // No scheduled flit anywhere in this NIC: every front has
      // send_at < 0, so the reservation-phase checks above are no-ops and
      // credit readiness can be tested first — the (common, at saturation)
      // credit-starved VC then never touches the queue front.
      const bool ready =
          config_.router.dropping() || credits_[static_cast<std::size_t>(v)] > 0;
      if (!ready) continue;
      requests[v] = 1;
      priority[v] = q.front().flit.priority;
      continue;
    }
    const QueuedFlit& qf = q.front();
    if (qf.send_at >= 0) {
      if (qf.send_at > now) continue;  // wait for the reservation phase
      if (qf.send_at < now) ++missed_slots_;
    }
    const bool ready = config_.router.dropping() || credits_[static_cast<std::size_t>(v)] > 0;
    if (!ready) continue;
    requests[v] = 1;
    priority[v] = qf.flit.priority;
  }
  const int vc = inject_arb_.arbitrate(requests, priority);
  if (vc < 0) {
    // Nothing to inject: return pending ejection credits on a credit-only
    // flit (piggyback mode's idle-cycle filler).
    if (config_.router.piggyback_credits && !carry_to_router_.empty()) {
      Flit f;
      f.type = FlitType::kCreditOnly;
      f.size_code = 0;
      f.carried_credit_vc = static_cast<std::int8_t>(carry_to_router_.front());
      carry_to_router_.pop_front();
      inject_->send(std::move(f));
    }
    return;
  }
  auto& q = vc_queues_[static_cast<std::size_t>(vc)];
  QueuedFlit qf = std::move(q.front());
  q.pop_front();
  --queued_flit_count_;
  if (qf.send_at >= 0) --scheduled_flit_count_;
  if (!config_.router.dropping()) --credits_[static_cast<std::size_t>(vc)];
  if (config_.router.piggyback_credits && !carry_to_router_.empty()) {
    qf.flit.carried_credit_vc = static_cast<std::int8_t>(carry_to_router_.front());
    carry_to_router_.pop_front();
  }
  qf.flit.injected = now;
  if (router::is_head(qf.flit.type)) ++packets_injected_;
  ++flits_injected_;
  if (router::is_tail(qf.flit.type) && qf.send_at < 0) {
    --queued_packets_per_class_[static_cast<std::size_t>(qf.flit.priority >= 1000
                                                             ? 3
                                                             : qf.flit.priority)];
  }
  inject_->send(std::move(qf.flit));
}

void Nic::deliver(Packet&& packet) {
  if (delivery_observer_) delivery_observer_(packet);
  for (const auto& filter : filters_) {
    if (filter(packet)) return;
  }
  if (handler_) {
    handler_(std::move(packet));
  } else {
    received_.push_back(std::move(packet));
  }
}

int Nic::queued_flits() const {
  int n = 0;
  for (const auto& q : vc_queues_) n += static_cast<int>(q.size());
  return n;
}

}  // namespace ocn::core
