#include "core/deflection.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace ocn::core {

using topo::Port;

DeflectionNetwork::DeflectionNetwork(const topo::Topology& topology, std::uint64_t seed)
    : topo_(topology),
      rng_(seed, /*stream=*/0xdef1ec7),
      arriving_(static_cast<std::size_t>(topology.num_nodes())),
      next_arriving_(static_cast<std::size_t>(topology.num_nodes())),
      inject_queues_(static_cast<std::size_t>(topology.num_nodes())) {}

void DeflectionNetwork::inject(NodeId src, NodeId dst, Cycle now) {
  DFlit f;
  f.src = src;
  f.dst = dst;
  f.created = now;
  inject_queues_[static_cast<std::size_t>(src)].push_back(f);
  ++injected_;
}

std::vector<Port> DeflectionNetwork::productive_ports(NodeId node, NodeId dst) const {
  std::vector<Port> out;
  const int k = topo_.radix();
  for (int dim = 0; dim < 2; ++dim) {
    const int from = topo_.ring_index(node, dim);
    const int to = topo_.ring_index(dst, dim);
    if (from == to) continue;
    const Port pos = dim == 0 ? Port::kRowPos : Port::kColPos;
    const Port neg = dim == 0 ? Port::kRowNeg : Port::kColNeg;
    if (topo_.has_wraparound()) {
      const int dist_pos = (to - from + k) % k;
      const int dist_neg = (from - to + k) % k;
      out.push_back(dist_pos <= dist_neg ? pos : neg);
    } else {
      out.push_back(to > from ? pos : neg);
    }
  }
  return out;
}

void DeflectionNetwork::step() {
  for (auto& v : next_arriving_) v.clear();

  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    auto& here = arriving_[static_cast<std::size_t>(n)];

    // Ejection: deliver every flit addressed here (a real tile needs one
    // ejection port per simultaneous arrival or it must deflect; we model
    // a single-cycle-wide ejection path for all arrivals, the common
    // simplification — the interesting contention is for the links).
    std::vector<DFlit> transit;
    for (auto& f : here) {
      if (f.dst == n) {
        ++delivered_;
        latency_.add(static_cast<double>(now_ - f.created));
        hops_.add(static_cast<double>(f.hops));
        link_mm_.add(f.mm);
      } else {
        transit.push_back(f);
      }
    }
    here.clear();

    // Oldest flit first (livelock freedom).
    std::sort(transit.begin(), transit.end(),
              [](const DFlit& a, const DFlit& b) { return a.created < b.created; });

    std::array<bool, topo::kNumDirPorts> used{};
    auto port_free = [&](Port p) {
      return !used[static_cast<std::size_t>(p)] && topo_.neighbor(n, p).has_value();
    };

    int ports_here = 0;
    for (int p = 0; p < topo::kNumDirPorts; ++p) {
      if (topo_.neighbor(n, static_cast<Port>(p)).has_value()) ++ports_here;
    }

    // Inject while capacity remains: a new flit may enter whenever fewer
    // flits need links than ports exist (it takes whatever port is left).
    auto& q = inject_queues_[static_cast<std::size_t>(n)];
    while (!q.empty() && static_cast<int>(transit.size()) < ports_here) {
      transit.push_back(q.front());
      q.pop_front();
    }

    for (auto& f : transit) {
      Port granted = Port::kTile;
      for (Port p : productive_ports(n, f.dst)) {
        if (port_free(p)) {
          granted = p;
          break;
        }
      }
      if (granted == Port::kTile) {
        // Deflect: any free port, chosen randomly among them for symmetry.
        std::vector<Port> free;
        for (int p = 0; p < topo::kNumDirPorts; ++p) {
          if (port_free(static_cast<Port>(p))) free.push_back(static_cast<Port>(p));
        }
        assert(!free.empty() && "more flits than ports at a deflection router");
        granted = free[rng_.next_below(free.size())];
        ++deflections_;
      }
      used[static_cast<std::size_t>(granted)] = true;
      const auto link = topo_.neighbor(n, granted);
      ++f.hops;
      f.mm += link->length_mm;
      total_flit_mm_ += link->length_mm;
      next_arriving_[static_cast<std::size_t>(link->dst)].push_back(f);
    }
  }

  std::swap(arriving_, next_arriving_);
  ++now_;
}

bool DeflectionNetwork::idle() const {
  if (injected_ != delivered_) return false;
  for (const auto& q : inject_queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

bool DeflectionNetwork::drain(Cycle max_cycles) {
  for (Cycle i = 0; i < max_cycles && !idle(); ++i) step();
  return idle();
}

}  // namespace ocn::core
