// Partitioned interfaces as real sub-networks (paper section 4.2).
//
// "A simple solution is to partition the width of the interface into
// several separate physical networks. Each partition of the interface will
// require its own control signals... Wide flits could still be transferred
// by using several of the 32-bit interfaces in parallel, but smaller flits
// would now only use a fraction of the total interface bandwidth."
//
// PartitionedNetwork instantiates N independent physical networks, each
// carrying data_bits/N per flit. A message of B bits occupies
// ceil(B / subwidth) partitions for one flit time each, sent in parallel;
// delivery completes when every sub-flit has arrived. The dispatcher
// rotates the starting partition per source so narrow messages spread over
// all partitions.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/network.h"

namespace ocn::core {

struct PartitionedMessage {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int payload_bits = 0;
  std::uint64_t word = 0;  ///< first 64 payload bits, for checking
  Cycle created = 0;
  Cycle delivered = 0;
  int partitions_used = 0;
  Cycle latency() const { return delivered - created; }
};

class PartitionedNetwork {
 public:
  using DeliveryHandler = std::function<void(const PartitionedMessage&)>;

  /// `base` describes each sub-network except its flit width, which becomes
  /// base.flit_data_bits / partitions.
  PartitionedNetwork(Config base, int partitions);

  int partitions() const { return static_cast<int>(nets_.size()); }
  int subflit_bits() const { return subflit_bits_; }
  Network& partition(int i) { return *nets_[static_cast<std::size_t>(i)]; }

  /// Send `payload_bits` from src to dst. Returns false on backpressure
  /// (any needed partition NIC queue full).
  bool send(NodeId src, NodeId dst, int payload_bits, std::uint64_t word = 0);

  void set_delivery_handler(DeliveryHandler h) { handler_ = std::move(h); }

  void step();
  Cycle now() const { return nets_.front()->now(); }
  bool drain(Cycle max_cycles);

  // --- statistics -----------------------------------------------------------
  std::int64_t messages_sent() const { return sent_; }
  std::int64_t messages_delivered() const { return delivered_; }
  const Accumulator& latency() const { return latency_; }
  /// Interface-bandwidth efficiency: payload bits delivered / (sub-flits
  /// delivered x subflit width). 1.0 = no padding waste.
  double interface_efficiency() const;

 private:
  struct Pending {
    int remaining = 0;
    PartitionedMessage msg;
  };

  void on_subflit(const Packet& p);

  int subflit_bits_;
  std::vector<std::unique_ptr<Network>> nets_;
  std::vector<int> next_start_;  ///< per-source rotation over partitions
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_msg_id_ = 1;

  DeliveryHandler handler_;
  std::int64_t sent_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t subflits_delivered_ = 0;
  std::int64_t payload_bits_delivered_ = 0;
  Accumulator latency_;
};

}  // namespace ocn::core
