#include "routing/source_route.h"

#include <cassert>

namespace ocn::routing {

using topo::Port;

void SourceRoute::push(std::uint8_t code) {
  assert(code < 4);
  assert(length_ < kMaxEntries);
  const int bit = 2 * length_;
  words_[static_cast<std::size_t>(bit / 64)] |=
      static_cast<std::uint64_t>(code) << (bit % 64);
  ++length_;
}

std::uint8_t SourceRoute::pop() {
  assert(!empty());
  const auto code = static_cast<std::uint8_t>(words_[0] & 0x3);
  for (std::size_t w = 0; w + 1 < words_.size(); ++w) {
    words_[w] = (words_[w] >> 2) | (words_[w + 1] << 62);
  }
  words_.back() >>= 2;
  --length_;
  return code;
}

std::uint8_t SourceRoute::front() const {
  assert(!empty());
  return static_cast<std::uint8_t>(words_[0] & 0x3);
}

Port apply_turn(Port heading, TurnCode turn) {
  assert(heading != Port::kTile);
  switch (turn) {
    case TurnCode::kStraight:
      return heading;
    case TurnCode::kLeft:
      return topo::is_row(heading) ? Port::kColPos : Port::kRowPos;
    case TurnCode::kRight:
      return topo::is_row(heading) ? Port::kColNeg : Port::kRowNeg;
    case TurnCode::kExtract:
      return Port::kTile;
  }
  return Port::kTile;
}

Port injection_port(std::uint8_t code) {
  assert(code < 4);
  return static_cast<Port>(code);
}

std::uint8_t injection_code(Port p) {
  assert(p != Port::kTile);
  return static_cast<std::uint8_t>(p);
}

std::optional<TurnCode> turn_between(Port heading, Port next) {
  if (heading == Port::kTile) return std::nullopt;
  if (next == Port::kTile) return TurnCode::kExtract;
  if (next == heading) return TurnCode::kStraight;
  if (topo::dim_of(next) == topo::dim_of(heading)) return std::nullopt;  // U-ish turn in dim
  return topo::is_positive(next) ? TurnCode::kLeft : TurnCode::kRight;
}

}  // namespace ocn::routing
