// Destination-to-route translation (paper section 2.2: "Local logic can also
// provide a translation from a destination node to a route").
//
// Routes are minimal and dimension-ordered (row first, then column), which
// keeps the turn model to a single turn and — combined with the VC dateline
// scheme — makes the torus deadlock-free. On rings, ties between the two
// directions (distance exactly k/2) break by a deterministic hash of
// (src, dst, dimension): globally the tied pairs split evenly between the
// two directions (so patterns like bit-complement load both ring halves),
// while any one (src, dst) pair always routes identically, preserving
// in-order delivery per source and class.
//
// Fault-aware recomputation (paper section 2.5's graceful degradation):
// links can be marked dead at runtime. On wraparound topologies a ring
// segment through a dead link is replaced by the (possibly non-minimal)
// segment the other way around the ring, which stays dimension-ordered, so
// the turn model and the dateline VC discipline — and therefore the
// deadlock-freedom argument — are unchanged; chaos::kill_link re-proves
// this with the CDG before committing the dead set. Meshes have no
// alternative under dimension-order routing, so dead mesh links leave the
// path unchanged and path_live() reports the casualty.
#pragma once

#include <vector>

#include "routing/source_route.h"
#include "topo/topology.h"

namespace ocn::routing {

class RouteComputer {
 public:
  explicit RouteComputer(const topo::Topology& topology) : topo_(topology) {}

  /// Output ports taken from src to dst, ending with kTile (the extract).
  /// Empty for src == dst.
  std::vector<topo::Port> port_path(NodeId src, NodeId dst) const;

  /// Encoded source route: first entry uses the absolute injection code,
  /// the rest relative turns, final entry extract.
  SourceRoute compute(NodeId src, NodeId dst) const;

  /// Decode a route by walking the topology; returns the nodes visited
  /// (starting with src, ending with the extraction node). Used by tests
  /// and by the deflection router's per-hop re-route.
  std::vector<NodeId> walk(NodeId src, SourceRoute route) const;

  /// Network hops (links traversed) for the computed route.
  int hop_count(NodeId src, NodeId dst) const;

  // --- fault-aware routing ----------------------------------------------------
  /// Mark the link out of `src` through `port` dead (or alive again). Every
  /// subsequently computed route detours around dead links where the
  /// topology offers a dimension-ordered alternative. Costs nothing on
  /// route computation while no link is dead.
  void set_link_dead(NodeId src, topo::Port port, bool dead = true);
  bool is_link_dead(NodeId src, topo::Port port) const;
  int dead_link_count() const { return dead_count_; }
  void clear_dead_links();

  /// True when the path src -> dst traverses no dead link (src == dst is
  /// trivially live).
  bool path_live(NodeId src, NodeId dst) const;

  const topo::Topology& topology() const { return topo_; }

 private:
  bool segment_live(NodeId from, topo::Port dir, int hops) const;

  const topo::Topology& topo_;
  /// Dead flag per (node, direction port); empty until a link dies.
  std::vector<std::uint8_t> dead_;
  int dead_count_ = 0;
};

}  // namespace ocn::routing
