// Destination-to-route translation (paper section 2.2: "Local logic can also
// provide a translation from a destination node to a route").
//
// Routes are minimal and dimension-ordered (row first, then column), which
// keeps the turn model to a single turn and — combined with the VC dateline
// scheme — makes the torus deadlock-free. On rings, ties between the two
// directions (distance exactly k/2) break by a deterministic hash of
// (src, dst, dimension): globally the tied pairs split evenly between the
// two directions (so patterns like bit-complement load both ring halves),
// while any one (src, dst) pair always routes identically, preserving
// in-order delivery per source and class.
#pragma once

#include <vector>

#include "routing/source_route.h"
#include "topo/topology.h"

namespace ocn::routing {

class RouteComputer {
 public:
  explicit RouteComputer(const topo::Topology& topology) : topo_(topology) {}

  /// Output ports taken from src to dst, ending with kTile (the extract).
  /// Empty for src == dst.
  std::vector<topo::Port> port_path(NodeId src, NodeId dst) const;

  /// Encoded source route: first entry uses the absolute injection code,
  /// the rest relative turns, final entry extract.
  SourceRoute compute(NodeId src, NodeId dst) const;

  /// Decode a route by walking the topology; returns the nodes visited
  /// (starting with src, ending with the extraction node). Used by tests
  /// and by the deflection router's per-hop re-route.
  std::vector<NodeId> walk(NodeId src, SourceRoute route) const;

  /// Network hops (links traversed) for the computed route.
  int hop_count(NodeId src, NodeId dst) const;

  const topo::Topology& topology() const { return topo_; }

 private:
  void append_ring_moves(std::vector<topo::Port>& path, int dim, int from_ring,
                         int to_ring, bool tie_positive) const;
  const topo::Topology& topo_;
};

}  // namespace ocn::routing
