#include "routing/route_computer.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace ocn::routing {

using topo::Port;

void RouteComputer::append_ring_moves(std::vector<Port>& path, int dim,
                                      int from_ring, int to_ring,
                                      bool tie_positive) const {
  const int k = topo_.radix();
  if (from_ring == to_ring) return;
  const Port pos = dim == 0 ? Port::kRowPos : Port::kColPos;
  const Port neg = dim == 0 ? Port::kRowNeg : Port::kColNeg;
  if (topo_.has_wraparound()) {
    const int dist_pos = (to_ring - from_ring + k) % k;
    const int dist_neg = (from_ring - to_ring + k) % k;
    const bool go_pos =
        dist_pos != dist_neg ? dist_pos < dist_neg : tie_positive;
    const int hops = go_pos ? dist_pos : dist_neg;
    for (int i = 0; i < hops; ++i) path.push_back(go_pos ? pos : neg);
  } else {
    const int hops = to_ring > from_ring ? to_ring - from_ring : from_ring - to_ring;
    const Port dir = to_ring > from_ring ? pos : neg;
    for (int i = 0; i < hops; ++i) path.push_back(dir);
  }
}

std::vector<Port> RouteComputer::port_path(NodeId src, NodeId dst) const {
  std::vector<Port> path;
  if (src == dst) return path;
  // Tie-break (ring distance exactly k/2): both members of an antipodal
  // pair orbit the same rotational direction, and pairs alternate direction
  // by the parity of their lower ring index. Every directed ring link then
  // carries exactly one tied flow under antipodal patterns (tornado,
  // bit-complement), using the full ring capacity.
  auto tie_bit = [&](int dim) {
    const int a = topo_.ring_index(src, dim);
    const int b = topo_.ring_index(dst, dim);
    return (std::min(a, b) % 2) == 0;
  };
  append_ring_moves(path, 0, topo_.ring_index(src, 0), topo_.ring_index(dst, 0),
                    tie_bit(0));
  append_ring_moves(path, 1, topo_.ring_index(src, 1), topo_.ring_index(dst, 1),
                    tie_bit(1));
  path.push_back(Port::kTile);
  return path;
}

SourceRoute RouteComputer::compute(NodeId src, NodeId dst) const {
  SourceRoute route;
  const auto path = port_path(src, dst);
  if (path.empty()) return route;
  route.push(injection_code(path.front()));
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto turn = turn_between(path[i - 1], path[i]);
    assert(turn.has_value() && "dimension-order path must be turn-encodable");
    route.push(static_cast<std::uint8_t>(*turn));
  }
  return route;
}

std::vector<NodeId> RouteComputer::walk(NodeId src, SourceRoute route) const {
  std::vector<NodeId> nodes{src};
  if (route.empty()) return nodes;
  Port heading = injection_port(route.pop());
  NodeId node = src;
  while (true) {
    const auto link = topo_.neighbor(node, heading);
    assert(link.has_value() && "route walks off the topology");
    node = link->dst;
    nodes.push_back(node);
    if (route.empty()) break;  // malformed route without extract; stop
    const auto code = static_cast<TurnCode>(route.pop());
    if (code == TurnCode::kExtract) break;
    heading = apply_turn(heading, code);
  }
  return nodes;
}

int RouteComputer::hop_count(NodeId src, NodeId dst) const {
  const auto path = port_path(src, dst);
  return path.empty() ? 0 : static_cast<int>(path.size()) - 1;
}

}  // namespace ocn::routing
