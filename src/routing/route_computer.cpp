#include "routing/route_computer.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace ocn::routing {

using topo::Port;

void RouteComputer::set_link_dead(NodeId src, Port port, bool dead) {
  assert(port != Port::kTile && "only direction links can die");
  assert(topo_.neighbor(src, port).has_value() && "no link leaves this port");
  if (dead_.empty()) {
    dead_.assign(static_cast<std::size_t>(topo_.num_nodes()) *
                     static_cast<std::size_t>(topo::kNumDirPorts),
                 0);
  }
  auto& flag = dead_[static_cast<std::size_t>(src) * topo::kNumDirPorts +
                     static_cast<std::size_t>(port)];
  if (flag != static_cast<std::uint8_t>(dead)) {
    flag = static_cast<std::uint8_t>(dead);
    dead_count_ += dead ? 1 : -1;
  }
}

bool RouteComputer::is_link_dead(NodeId src, Port port) const {
  if (dead_count_ == 0 || port == Port::kTile) return false;
  return dead_[static_cast<std::size_t>(src) * topo::kNumDirPorts +
               static_cast<std::size_t>(port)] != 0;
}

void RouteComputer::clear_dead_links() {
  dead_.clear();
  dead_count_ = 0;
}

bool RouteComputer::segment_live(NodeId from, Port dir, int hops) const {
  NodeId node = from;
  for (int i = 0; i < hops; ++i) {
    if (is_link_dead(node, dir)) return false;
    node = topo_.neighbor(node, dir)->dst;
  }
  return true;
}

bool RouteComputer::path_live(NodeId src, NodeId dst) const {
  if (dead_count_ == 0) return true;
  NodeId node = src;
  for (const Port p : port_path(src, dst)) {
    if (p == Port::kTile) break;
    if (is_link_dead(node, p)) return false;
    node = topo_.neighbor(node, p)->dst;
  }
  return true;
}

std::vector<Port> RouteComputer::port_path(NodeId src, NodeId dst) const {
  std::vector<Port> path;
  if (src == dst) return path;
  const int k = topo_.radix();
  // Tie-break (ring distance exactly k/2): both members of an antipodal
  // pair orbit the same rotational direction, and pairs alternate direction
  // by the parity of their lower ring index. Every directed ring link then
  // carries exactly one tied flow under antipodal patterns (tornado,
  // bit-complement), using the full ring capacity.
  auto tie_bit = [&](int dim) {
    const int a = topo_.ring_index(src, dim);
    const int b = topo_.ring_index(dst, dim);
    return (std::min(a, b) % 2) == 0;
  };
  NodeId node = src;
  for (int dim = 0; dim < 2; ++dim) {
    const int from = topo_.ring_index(node, dim);
    const int to = topo_.ring_index(dst, dim);
    if (from == to) continue;
    const Port pos = dim == 0 ? Port::kRowPos : Port::kColPos;
    const Port neg = dim == 0 ? Port::kRowNeg : Port::kColNeg;
    Port dir;
    int hops;
    if (topo_.has_wraparound()) {
      const int dist_pos = (to - from + k) % k;
      const int dist_neg = (from - to + k) % k;
      const bool go_pos =
          dist_pos != dist_neg ? dist_pos < dist_neg : tie_bit(dim);
      dir = go_pos ? pos : neg;
      hops = go_pos ? dist_pos : dist_neg;
      // Fault-aware detour: when the chosen ring segment crosses a dead
      // link, go the other way around the ring if that side is intact. The
      // detour is non-minimal but still dimension-ordered, so the turn
      // encoding and the dateline VC scheme apply unchanged.
      if (dead_count_ > 0 && !segment_live(node, dir, hops)) {
        const Port alt = go_pos ? neg : pos;
        if (segment_live(node, alt, k - hops)) {
          dir = alt;
          hops = k - hops;
        }
      }
    } else {
      dir = to > from ? pos : neg;
      hops = to > from ? to - from : from - to;
    }
    for (int i = 0; i < hops; ++i) {
      path.push_back(dir);
      node = topo_.neighbor(node, dir)->dst;
    }
  }
  path.push_back(Port::kTile);
  return path;
}

SourceRoute RouteComputer::compute(NodeId src, NodeId dst) const {
  SourceRoute route;
  if (src == dst) return route;
  if (dead_count_ == 0) {
    // Fault-free fast path: emit the turn codes straight from the two
    // per-dimension (direction, hops) legs, skipping port_path's vector and
    // its per-hop neighbor() walks (a virtual call each — this runs per
    // injected packet). Identical to the slow path below: a row hop changes
    // only the row ring index (and vice versa), so both legs' endpoints are
    // known from src alone, and the tie-break already uses only src/dst.
    const int k = topo_.radix();
    Port dirs[2] = {Port::kRowPos, Port::kColPos};
    int hops[2] = {0, 0};
    for (int dim = 0; dim < 2; ++dim) {
      const int from = topo_.ring_index(src, dim);
      const int to = topo_.ring_index(dst, dim);
      if (from == to) continue;
      const Port pos = dim == 0 ? Port::kRowPos : Port::kColPos;
      const Port neg = dim == 0 ? Port::kRowNeg : Port::kColNeg;
      if (topo_.has_wraparound()) {
        const int dist_pos = (to - from + k) % k;
        const int dist_neg = (from - to + k) % k;
        const bool go_pos = dist_pos != dist_neg ? dist_pos < dist_neg
                                                 : (std::min(from, to) % 2) == 0;
        dirs[dim] = go_pos ? pos : neg;
        hops[dim] = go_pos ? dist_pos : dist_neg;
      } else {
        dirs[dim] = to > from ? pos : neg;
        hops[dim] = to > from ? to - from : from - to;
      }
    }
    const bool row = hops[0] > 0;
    const bool col = hops[1] > 0;
    route.push(injection_code(row ? dirs[0] : dirs[1]));
    if (row) {
      const auto straight = turn_between(dirs[0], dirs[0]);
      assert(straight.has_value());
      for (int i = 1; i < hops[0]; ++i) route.push(static_cast<std::uint8_t>(*straight));
      if (col) {
        const auto turn = turn_between(dirs[0], dirs[1]);
        assert(turn.has_value() && "dimension-order path must be turn-encodable");
        route.push(static_cast<std::uint8_t>(*turn));
      }
    }
    if (col) {
      const auto straight = turn_between(dirs[1], dirs[1]);
      assert(straight.has_value());
      for (int i = 1; i < hops[1]; ++i) route.push(static_cast<std::uint8_t>(*straight));
    }
    const auto extract = turn_between(col ? dirs[1] : dirs[0], Port::kTile);
    assert(extract.has_value());
    route.push(static_cast<std::uint8_t>(*extract));
    return route;
  }
  const auto path = port_path(src, dst);
  if (path.empty()) return route;
  route.push(injection_code(path.front()));
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto turn = turn_between(path[i - 1], path[i]);
    assert(turn.has_value() && "dimension-order path must be turn-encodable");
    route.push(static_cast<std::uint8_t>(*turn));
  }
  return route;
}

std::vector<NodeId> RouteComputer::walk(NodeId src, SourceRoute route) const {
  std::vector<NodeId> nodes{src};
  if (route.empty()) return nodes;
  Port heading = injection_port(route.pop());
  NodeId node = src;
  while (true) {
    const auto link = topo_.neighbor(node, heading);
    assert(link.has_value() && "route walks off the topology");
    node = link->dst;
    nodes.push_back(node);
    if (route.empty()) break;  // malformed route without extract; stop
    const auto code = static_cast<TurnCode>(route.pop());
    if (code == TurnCode::kExtract) break;
    heading = apply_turn(heading, code);
  }
  return nodes;
}

int RouteComputer::hop_count(NodeId src, NodeId dst) const {
  const auto path = port_path(src, dst);
  return path.empty() ? 0 : static_cast<int>(path.size()) - 1;
}

}  // namespace ocn::routing
