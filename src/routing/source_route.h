// Source routes: the paper's 16-bit route field carrying two bits per hop
// (section 2.1): "left, right, straight, or extract".
//
// Encoding conventions (made precise here, the paper leaves them implicit):
//  * At a direction input controller the two bits are a turn relative to the
//    packet's current heading: straight continues in the same ring
//    direction; left turns to the +port of the other dimension; right to
//    the -port; extract delivers to the tile.
//  * At the tile input controller (the injection hop) there is no heading
//    yet, so the two bits select the output direction absolutely
//    (row+/row-/col+/col-). Self-delivery never enters the network: the NIC
//    short-circuits it locally.
//
// The class stores up to 128 two-bit entries (enough for dimension-ordered
// routes on a radix-64 mesh, whose worst case is 2*(radix-1)+1 = 127
// entries); `bits_required()` lets the configuration check that routes fit
// the 16-bit field of the paper's example network.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "sim/types.h"
#include "topo/topology.h"

namespace ocn::routing {

enum class TurnCode : std::uint8_t {
  kStraight = 0,
  kLeft = 1,
  kRight = 2,
  kExtract = 3,
};

class SourceRoute {
 public:
  static constexpr int kMaxEntries = 128;
  /// The paper's route field width.
  static constexpr int kPaperRouteBits = 16;

  SourceRoute() = default;

  /// Append a two-bit code (consumed FIFO).
  void push(std::uint8_t code);
  /// Consume the next two-bit code. Precondition: !empty().
  std::uint8_t pop();
  /// Peek without consuming.
  std::uint8_t front() const;

  bool empty() const { return length_ == 0; }
  int size() const { return length_; }
  int bits_required() const { return 2 * length_; }
  bool fits_paper_field() const { return bits_required() <= kPaperRouteBits; }

  /// Low 64 bits of the field as it would appear on the wire (low bits
  /// consumed first). Routes short enough for the paper's 16-bit field fit
  /// entirely in this word.
  std::uint64_t raw() const { return words_[0]; }

  friend bool operator==(const SourceRoute&, const SourceRoute&) = default;

 private:
  static constexpr int kWords = (2 * kMaxEntries + 63) / 64;
  std::array<std::uint64_t, kWords> words_{};
  int length_ = 0;
};

/// Resolve a relative turn at a direction input controller.
topo::Port apply_turn(topo::Port heading, TurnCode turn);

/// Absolute direction selected by the injection (tile-input) code.
topo::Port injection_port(std::uint8_t code);
std::uint8_t injection_code(topo::Port p);

/// Turn code that takes a packet heading `heading` out through `next`, if
/// the transition is expressible (no U-turns).
std::optional<TurnCode> turn_between(topo::Port heading, topo::Port next);

}  // namespace ocn::routing
