// Byte-buffer messaging on top of the datagram interface: the basic helper
// higher-level services use to serialize structures into 256-bit flits.
// Layout: the first 8 bytes of the first flit hold a 32-bit tag and the
// 32-bit byte length; payload bytes follow, 32 per flit thereafter.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/interface.h"

namespace ocn::services {

struct Message {
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> bytes;
};

/// Serialize a message into a packet for `dst` on `service_class`.
core::Packet pack_message(NodeId dst, int service_class, const Message& m);

/// Recover a message; nullopt if the packet is too short to carry a header
/// or its length field is inconsistent with its flit count.
std::optional<Message> unpack_message(const core::Packet& p);

/// Bytes of payload capacity for a message of the given flit count.
int message_capacity_bytes(int num_flits);

}  // namespace ocn::services
