#include "services/logical_wire.h"

namespace ocn::services {

LogicalWire::LogicalWire(core::Network& net, NodeId src, NodeId dst, int bundle_id,
                         int service_class)
    : net_(net), src_(src), dst_(dst), bundle_id_(bundle_id), service_class_(service_class) {
  net_.nic(dst).add_filter([this](const core::Packet& p) {
    if (p.src != src_ || p.last_flit_bits != 16) return false;
    const std::uint64_t word = p.flit_payloads[0][0];
    if (static_cast<int>((word >> 8) & 0xff) != bundle_id_) return false;
    output_ = static_cast<std::uint8_t>(word & 0xff);
    last_update_ = p.delivered;
    ++updates_received_;
    latency_.add(static_cast<double>(p.latency()));
    return true;
  });
  net_.kernel().add(this);
}

void LogicalWire::step(Cycle now) {
  if (sent_anything_ && input_ == last_sent_) return;
  // A change: inject a single-flit packet with data size 16 — 8 state bits
  // plus 8 bits identifying the bundle.
  core::Packet p = core::make_packet(dst_, service_class_, /*num_flits=*/1,
                                     /*last_flit_bits=*/16);
  p.flit_payloads[0][0] = static_cast<std::uint64_t>(input_) |
                          (static_cast<std::uint64_t>(bundle_id_ & 0xff) << 8);
  if (net_.nic(src_).inject(std::move(p), now)) {
    last_sent_ = input_;
    sent_anything_ = true;
    ++updates_sent_;
  }
}

}  // namespace ocn::services
