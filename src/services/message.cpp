#include "services/message.h"

#include <cassert>
#include <cstring>

namespace ocn::services {
namespace {
constexpr int kFlitBytes = router::kDataBits / 8;  // 32
constexpr int kHeaderBytes = 8;
}  // namespace

int message_capacity_bytes(int num_flits) {
  return num_flits * kFlitBytes - kHeaderBytes;
}

core::Packet pack_message(NodeId dst, int service_class, const Message& m) {
  const int total_bytes = kHeaderBytes + static_cast<int>(m.bytes.size());
  const int flits = (total_bytes + kFlitBytes - 1) / kFlitBytes;
  const int last_bytes = total_bytes - (flits - 1) * kFlitBytes;
  core::Packet p = core::make_packet(dst, service_class, flits,
                                     /*last_flit_bits=*/last_bytes * 8);
  p.flit_payloads[0][0] = (static_cast<std::uint64_t>(m.tag) << 32) |
                          static_cast<std::uint32_t>(m.bytes.size());
  // Pack bytes after the header, little-endian within each 64-bit word.
  for (std::size_t i = 0; i < m.bytes.size(); ++i) {
    const std::size_t off = kHeaderBytes + i;
    const std::size_t flit = off / kFlitBytes;
    const std::size_t word = (off % kFlitBytes) / 8;
    const std::size_t shift = (off % 8) * 8;
    p.flit_payloads[flit][word] |= static_cast<std::uint64_t>(m.bytes[i]) << shift;
  }
  return p;
}

std::optional<Message> unpack_message(const core::Packet& p) {
  if (p.flit_payloads.empty()) return std::nullopt;
  Message m;
  const std::uint64_t header = p.flit_payloads[0][0];
  m.tag = static_cast<std::uint32_t>(header >> 32);
  const auto length = static_cast<std::uint32_t>(header & 0xffffffffu);
  const int capacity = p.num_flits() * kFlitBytes - kHeaderBytes;
  if (static_cast<int>(length) > capacity) return std::nullopt;
  m.bytes.resize(length);
  for (std::size_t i = 0; i < m.bytes.size(); ++i) {
    const std::size_t off = kHeaderBytes + i;
    const std::size_t flit = off / kFlitBytes;
    const std::size_t word = (off % kFlitBytes) / 8;
    const std::size_t shift = (off % 8) * 8;
    m.bytes[i] = static_cast<std::uint8_t>(p.flit_payloads[flit][word] >> shift);
  }
  return m;
}

}  // namespace ocn::services
