// DMA engine: bulk block transfer layered on the memory service — the kind
// of reusable module logic paper section 2.2 expects to be "made readily
// available so it won't have to be independently redesigned with each
// module".
//
// A DmaEngine at one tile copies a block of words into a MemoryServer's
// address space with a bounded number of outstanding writes, then fires a
// completion callback (and optionally raises a logical wire, the
// interrupt idiom of the examples).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/network.h"
#include "services/memory_service.h"

namespace ocn::services {

class DmaEngine final : public Clockable {
 public:
  using Completion = std::function<void(Cycle elapsed)>;

  /// `window` bounds outstanding write requests (memory-service protocol
  /// credits at the DMA level).
  DmaEngine(core::Network& net, NodeId node, int window = 8);

  /// Start copying `data` into [dst_addr, dst_addr+size) at `server`.
  /// One transfer at a time; returns false while one is active.
  bool start(NodeId server, std::uint64_t dst_addr,
             std::vector<std::uint64_t> data, Completion done);

  bool busy() const { return busy_; }
  std::int64_t words_transferred() const { return words_done_; }
  const Accumulator& transfer_cycles() const { return transfer_cycles_; }

  void step(Cycle now) override;

 private:
  void issue(Cycle now);

  core::Network& net_;
  NodeId node_;
  int window_;
  MemoryClient client_;

  bool busy_ = false;
  NodeId server_ = kInvalidNode;
  std::uint64_t dst_addr_ = 0;
  std::vector<std::uint64_t> data_;
  std::size_t next_issue_ = 0;
  int outstanding_ = 0;
  std::size_t completed_ = 0;
  Cycle started_ = 0;
  Completion done_;

  std::int64_t words_done_ = 0;
  Accumulator transfer_cycles_;
};

}  // namespace ocn::services
