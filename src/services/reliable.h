// End-to-end check and retry (paper section 2.5): "modules that required
// transient fault tolerance could employ end-to-end checking with retry by
// layering the checking protocol on top of the network interfaces."
//
// Each data word travels in a single-flit packet carrying a CRC-32 over
// (sequence, payload). The receiver delivers words whose CRC verifies and
// acknowledges them; corrupted packets are dropped silently. The sender
// retransmits unacknowledged words after a timeout. Combined with the
// spare-bit steering layer this gives the paper's full fault story: hard
// faults are fused out, residual/transient corruption is caught end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/network.h"
#include "sim/stats.h"

namespace ocn::services {

/// CRC-32 (IEEE 802.3, reflected) over a byte span; exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t length);
std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count);

class ReliableChannel final : public Clockable {
 public:
  using WordHandler = std::function<void(std::uint64_t)>;

  ReliableChannel(core::Network& net, NodeId src, NodeId dst,
                  Cycle retry_timeout = 256, int service_class = 1);

  /// Queue a word for guaranteed, in-order delivery.
  void send(std::uint64_t word);

  void set_handler(WordHandler h) { handler_ = std::move(h); }
  const std::deque<std::uint64_t>& received() const { return received_; }

  void step(Cycle now) override;

  bool all_acknowledged() const { return pending_.empty() && tx_queue_.empty(); }
  std::int64_t retransmissions() const { return retransmissions_; }
  std::int64_t crc_rejects() const { return crc_rejects_; }
  std::int64_t duplicates_dropped() const { return duplicates_; }

 private:
  struct Pending {
    std::uint64_t word;
    std::uint32_t seq;
    Cycle sent_at;
  };

  void transmit(const Pending& p, Cycle now);

  core::Network& net_;
  NodeId src_;
  NodeId dst_;
  Cycle timeout_;
  int service_class_;

  std::deque<std::uint64_t> tx_queue_;
  std::deque<Pending> pending_;  ///< sent, awaiting ack (in order)
  std::uint32_t tx_seq_ = 0;
  std::uint32_t rx_expected_ = 0;
  int window_ = 8;

  WordHandler handler_;
  std::deque<std::uint64_t> received_;

  std::int64_t retransmissions_ = 0;
  std::int64_t crc_rejects_ = 0;
  std::int64_t duplicates_ = 0;
};

}  // namespace ocn::services
