// End-to-end check and retry (paper section 2.5): "modules that required
// transient fault tolerance could employ end-to-end checking with retry by
// layering the checking protocol on top of the network interfaces."
//
// Each data word travels in a single-flit packet carrying a CRC-32 over
// (sequence, payload). The receiver delivers words in order, buffers words
// that arrive ahead of a gap, and acknowledges with a cumulative sequence
// plus a selective-ack bitmap of the buffered words; corrupted packets (and
// corrupted acks — acks carry their own CRC) are dropped silently. The
// sender retransmits selectively: every unacknowledged word has its own
// retry timer with exponential backoff and deterministic jitter, so a burst
// of losses never turns into a retransmit storm. Sequence numbers are 32-bit
// and compared modularly (serial-number arithmetic), so the protocol
// survives tx_seq_ wrapping past 2^32. Combined with the spare-bit steering
// layer this gives the paper's full fault story: hard faults are fused out,
// residual/transient corruption is caught end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "core/network.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace ocn::services {

/// CRC-32 (IEEE 802.3, reflected) over a byte span; exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t length);
std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count);

/// Serial-number (modular) comparison: true when `a` precedes `b` on the
/// 32-bit sequence circle. Well-defined while the two are within 2^31 of
/// each other, which the bounded send window guarantees.
constexpr bool seq_before(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

class ReliableChannel final : public Clockable {
 public:
  using WordHandler = std::function<void(std::uint64_t)>;

  /// Receive window: how far ahead of the next expected sequence the
  /// receiver buffers out-of-order words. The selective-ack bitmap covers
  /// offsets 1..kRxWindow-1, so the send window must stay below this.
  static constexpr int kRxWindow = 64;

  ReliableChannel(core::Network& net, NodeId src, NodeId dst,
                  Cycle retry_timeout = 256, int service_class = 1);
  ~ReliableChannel() override;
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Queue a word for guaranteed, in-order delivery.
  void send(std::uint64_t word);

  void set_handler(WordHandler h) { handler_ = std::move(h); }
  const std::deque<std::uint64_t>& received() const { return received_; }

  /// Send window (words in flight unacknowledged); must be < kRxWindow.
  void set_window(int window);

  /// Test hook: start both endpoints' sequence state at `seq` (models a
  /// long-lived channel approaching 32-bit wraparound). Must be called
  /// before any traffic.
  void start_sequence_at(std::uint32_t seq);

  void step(Cycle now) override;

  bool all_acknowledged() const { return pending_.empty() && tx_queue_.empty(); }
  std::int64_t retransmissions() const { return retransmissions_; }
  std::int64_t crc_rejects() const { return crc_rejects_; }
  std::int64_t duplicates_dropped() const { return duplicates_; }
  std::int64_t words_sent() const { return words_sent_; }

 private:
  struct Pending {
    std::uint64_t word;
    std::uint32_t seq;
    Cycle next_retry_at;  ///< this entry's own timer (selective repeat)
    int retries;
    bool sacked;  ///< receiver holds it out of order; do not retransmit
  };

  void transmit(const Pending& p, Cycle now);
  Cycle backoff_delay(int retries);
  void on_data(const core::Packet& p);
  void on_ack(const core::Packet& p);
  void deliver(std::uint64_t word);

  core::Network& net_;
  NodeId src_;
  NodeId dst_;
  Cycle timeout_;
  int service_class_;
  Rng rng_;  ///< retry jitter; seeded from (src, dst) for determinism

  std::deque<std::uint64_t> tx_queue_;
  std::deque<Pending> pending_;  ///< sent, awaiting ack (sequence order)
  std::uint32_t tx_seq_ = 0;
  std::uint32_t rx_expected_ = 0;
  int window_ = 8;

  /// Out-of-order receive buffer: slot d holds the word with sequence
  /// rx_expected_ + d (slot 0 — the gap itself — is always empty).
  std::deque<std::optional<std::uint64_t>> rx_buffer_;

  WordHandler handler_;
  std::deque<std::uint64_t> received_;

  std::int64_t retransmissions_ = 0;
  std::int64_t crc_rejects_ = 0;
  std::int64_t duplicates_ = 0;
  std::int64_t words_sent_ = 0;
};

}  // namespace ocn::services
