#include "services/memory_service.h"

namespace ocn::services {
namespace {
// "OCNMEM01" request / "OCNMEM02" response magic words.
constexpr std::uint64_t kReqMagic = 0x4f434e4d454d3031ull;
constexpr std::uint64_t kRspMagic = 0x4f434e4d454d3032ull;
constexpr std::uint64_t kOpRead = 0;
constexpr std::uint64_t kOpWrite = 1;

core::Packet make_request(NodeId server, std::uint64_t op, std::uint32_t req_id,
                          std::uint64_t addr, std::uint64_t value) {
  core::Packet p = core::make_packet(server, kMemoryRequestClass, 1);
  p.flit_payloads[0][0] = kReqMagic;
  p.flit_payloads[0][1] = (op << 32) | req_id;
  p.flit_payloads[0][2] = addr;
  p.flit_payloads[0][3] = value;
  return p;
}
}  // namespace

MemoryServer::MemoryServer(core::Network& net, NodeId node, std::size_t words)
    : net_(net), node_(node), memory_(words, 0) {
  net_.nic(node).add_filter([this](const core::Packet& p) {
    if (p.num_flits() != 1 || p.flit_payloads[0][0] != kReqMagic) return false;
    const std::uint64_t op = p.flit_payloads[0][1] >> 32;
    const auto req_id = static_cast<std::uint32_t>(p.flit_payloads[0][1]);
    const std::uint64_t addr = p.flit_payloads[0][2];
    std::uint64_t value = p.flit_payloads[0][3];
    if (addr >= memory_.size()) value = ~std::uint64_t{0};  // bus-error style
    if (op == kOpWrite) {
      if (addr < memory_.size()) memory_[addr] = value;
      ++writes_;
    } else {
      if (addr < memory_.size()) value = memory_[addr];
      ++reads_;
    }
    core::Packet rsp = core::make_packet(p.src, kMemoryResponseClass, 1);
    rsp.flit_payloads[0][0] = kRspMagic;
    rsp.flit_payloads[0][1] = (op << 32) | req_id;
    rsp.flit_payloads[0][2] = addr;
    rsp.flit_payloads[0][3] = value;
    net_.nic(node_).inject(std::move(rsp), net_.now());
    return true;
  });
}

MemoryClient::MemoryClient(core::Network& net, NodeId node) : net_(net), node_(node) {
  net_.nic(node).add_filter([this](const core::Packet& p) {
    if (p.num_flits() != 1 || p.flit_payloads[0][0] != kRspMagic) return false;
    const std::uint64_t op = p.flit_payloads[0][1] >> 32;
    const auto req_id = static_cast<std::uint32_t>(p.flit_payloads[0][1]);
    const Cycle now = net_.now();
    if (op == kOpRead) {
      auto it = pending_reads_.find(req_id);
      if (it == pending_reads_.end()) return false;
      const Cycle latency = now - it->second.second;
      read_latency_.add(static_cast<double>(latency));
      auto cb = std::move(it->second.first);
      pending_reads_.erase(it);
      if (cb) cb(p.flit_payloads[0][3], latency);
    } else {
      auto it = pending_writes_.find(req_id);
      if (it == pending_writes_.end()) return false;
      const Cycle latency = now - it->second.second;
      write_latency_.add(static_cast<double>(latency));
      auto cb = std::move(it->second.first);
      pending_writes_.erase(it);
      if (cb) cb(latency);
    }
    return true;
  });
}

bool MemoryClient::read(NodeId server, std::uint64_t addr, ReadCallback done) {
  const std::uint32_t id = next_req_++;
  if (!net_.nic(node_).inject(make_request(server, kOpRead, id, addr, 0), net_.now())) {
    return false;
  }
  pending_reads_.emplace(id, std::make_pair(std::move(done), net_.now()));
  return true;
}

bool MemoryClient::write(NodeId server, std::uint64_t addr, std::uint64_t value,
                         WriteCallback done) {
  const std::uint32_t id = next_req_++;
  if (!net_.nic(node_).inject(make_request(server, kOpWrite, id, addr, value), net_.now())) {
    return false;
  }
  pending_writes_.emplace(id, std::make_pair(std::move(done), net_.now()));
  return true;
}

}  // namespace ocn::services
