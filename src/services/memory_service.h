// Memory read/write service (paper section 2.2: "this local logic could
// present a memory read/write service").
//
// A MemoryServer owns a word-addressed memory at one tile and answers
// request datagrams; a MemoryClient issues reads and writes and completes
// them via callbacks. Requests and responses travel on different service
// classes (different VC pairs) so a full response path can never block
// requests — the standard protocol-deadlock precaution.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/network.h"
#include "sim/stats.h"

namespace ocn::services {

inline constexpr int kMemoryRequestClass = 0;
inline constexpr int kMemoryResponseClass = 1;

class MemoryServer {
 public:
  MemoryServer(core::Network& net, NodeId node, std::size_t words);

  NodeId node() const { return node_; }
  std::uint64_t peek(std::uint64_t addr) const { return memory_.at(addr); }
  void poke(std::uint64_t addr, std::uint64_t value) { memory_.at(addr) = value; }

  std::int64_t reads_served() const { return reads_; }
  std::int64_t writes_served() const { return writes_; }

 private:
  core::Network& net_;
  NodeId node_;
  std::vector<std::uint64_t> memory_;
  std::int64_t reads_ = 0;
  std::int64_t writes_ = 0;
};

class MemoryClient {
 public:
  using ReadCallback = std::function<void(std::uint64_t value, Cycle latency)>;
  using WriteCallback = std::function<void(Cycle latency)>;

  MemoryClient(core::Network& net, NodeId node);

  /// Issue a read of `addr` at `server`. Returns false if the NIC queue
  /// rejected the request.
  bool read(NodeId server, std::uint64_t addr, ReadCallback done);
  bool write(NodeId server, std::uint64_t addr, std::uint64_t value, WriteCallback done);

  int outstanding() const { return static_cast<int>(pending_reads_.size() + pending_writes_.size()); }
  const Accumulator& read_latency() const { return read_latency_; }
  const Accumulator& write_latency() const { return write_latency_; }

 private:
  core::Network& net_;
  NodeId node_;
  std::uint32_t next_req_ = 1;
  std::unordered_map<std::uint32_t, std::pair<ReadCallback, Cycle>> pending_reads_;
  std::unordered_map<std::uint32_t, std::pair<WriteCallback, Cycle>> pending_writes_;
  Accumulator read_latency_;
  Accumulator write_latency_;
};

}  // namespace ocn::services
