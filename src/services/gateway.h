// Chip-to-chip gateway (paper section 1: network clients include "gateways
// to networks on other chips"; the motivation draws on inter-chip networks
// for system-level interconnect [7]).
//
// A ChipGateway pairs one tile on chip A with one tile on chip B. Local
// clients tunnel datagrams to the remote chip by wrapping them in an
// envelope addressed to the local gateway tile; the gateway unwraps,
// carries them across the inter-chip link (a bandwidth-limited delay line,
// standing in for the package/board channel), and re-injects them into the
// remote network addressed to their final tile.
//
// Both networks must be stepped by the caller; the gateway registers a
// pump on each kernel and is safe as long as the two chips advance at the
// same rate (synchronous chip-to-chip interface).
#pragma once

#include <deque>

#include "core/network.h"

namespace ocn::services {

/// Wrap a packet for tunnelling: the result is addressed to the local
/// gateway tile; `remote_dst` is the destination tile on the other chip.
core::Packet make_remote_packet(NodeId gateway_tile, NodeId remote_dst,
                                int service_class, std::uint64_t word,
                                int data_bits = 64);

class ChipGateway {
 public:
  /// `link_latency` is the chip-crossing delay in cycles; `link_width_flits`
  /// flits may enter the crossing per cycle in each direction (an inter-chip
  /// link is pin-limited, section 3.1 — typically 1 or less).
  ChipGateway(core::Network& chip_a, NodeId tile_a, core::Network& chip_b,
              NodeId tile_b, Cycle link_latency = 8, int link_width_flits = 1);

  std::int64_t forwarded_a_to_b() const { return a_to_b_.forwarded; }
  std::int64_t forwarded_b_to_a() const { return b_to_a_.forwarded; }
  /// Envelopes waiting for the inter-chip link (pin-limit backpressure).
  int queued_a() const { return static_cast<int>(a_to_b_.queue.size()); }
  int queued_b() const { return static_cast<int>(b_to_a_.queue.size()); }

 private:
  struct Direction {
    core::Network* from = nullptr;
    core::Network* to = nullptr;
    NodeId from_tile = kInvalidNode;
    NodeId to_tile = kInvalidNode;
    std::deque<std::pair<core::Packet, Cycle>> queue;  ///< (packet, arrive_at)
    std::int64_t forwarded = 0;
  };

  /// Registered on the sending chip's kernel: drains arrivals due this cycle.
  class Pump final : public Clockable {
   public:
    Pump(ChipGateway* gw, Direction* dir) : gw_(gw), dir_(dir) {}
    void step(Cycle now) override;

   private:
    ChipGateway* gw_;
    Direction* dir_;
  };

  void install(Direction& dir);

  Cycle link_latency_;
  int link_width_;
  Direction a_to_b_;
  Direction b_to_a_;
  Pump pump_ab_{this, &a_to_b_};
  Pump pump_ba_{this, &b_to_a_};
};

}  // namespace ocn::services
