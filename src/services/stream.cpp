#include "services/stream.h"

#include "services/message.h"

namespace ocn::services {
namespace {
constexpr std::uint32_t kDataTagBase = 0x53545200;    // "STR\0" | seq low byte unused
constexpr std::uint32_t kCreditTag = 0x53545243;      // "STRC"
}  // namespace

Stream::Stream(core::Network& net, NodeId src, NodeId dst, int window, int data_class,
               int credit_class)
    : net_(net),
      src_(src),
      dst_(dst),
      window_(window),
      data_class_(data_class),
      credit_class_(credit_class) {
  // Sink side: consume data packets, return credits.
  net_.nic(dst).add_filter([this](const core::Packet& p) {
    const auto m = unpack_message(p);
    if (!m || p.src != src_ || (m->tag & 0xffffff00u) != kDataTagBase) return false;
    ++packets_received_;
    // First payload word after the header carries the sequence number.
    if (m->bytes.size() < 4) return true;
    std::uint32_t seq = 0;
    for (int i = 0; i < 4; ++i) seq |= static_cast<std::uint32_t>(m->bytes[i]) << (8 * i);
    if (seq != rx_seq_) ++sequence_errors_;
    rx_seq_ = seq + 1;
    std::vector<std::uint8_t> chunk(m->bytes.begin() + 4, m->bytes.end());
    bytes_delivered_ += static_cast<std::int64_t>(chunk.size());
    if (sink_) {
      sink_(chunk);
    } else {
      sink_buffer_.insert(sink_buffer_.end(), chunk.begin(), chunk.end());
    }
    Message credit;
    credit.tag = kCreditTag;
    net_.nic(dst_).inject(pack_message(src_, credit_class_, credit), net_.now());
    return true;
  });
  // Source side: absorb returned credits.
  net_.nic(src).add_filter([this](const core::Packet& p) {
    const auto m = unpack_message(p);
    if (!m || p.src != dst_ || m->tag != kCreditTag) return false;
    --in_flight_;
    return true;
  });
  net_.kernel().add(this);
}

void Stream::push(const std::vector<std::uint8_t>& bytes) {
  tx_queue_.insert(tx_queue_.end(), bytes.begin(), bytes.end());
}

void Stream::step(Cycle now) {
  while (!tx_queue_.empty() && in_flight_ < window_) {
    const int take = std::min<int>(kChunkBytes - 4, static_cast<int>(tx_queue_.size()));
    Message m;
    m.tag = kDataTagBase;
    m.bytes.reserve(static_cast<std::size_t>(take) + 4);
    for (int i = 0; i < 4; ++i) {
      m.bytes.push_back(static_cast<std::uint8_t>(tx_seq_ >> (8 * i)));
    }
    for (int i = 0; i < take; ++i) {
      m.bytes.push_back(tx_queue_.front());
      tx_queue_.pop_front();
    }
    if (!net_.nic(src_).inject(pack_message(dst_, data_class_, m), now)) {
      // NIC backpressure; put the chunk back and retry next cycle.
      for (int i = take - 1; i >= 0; --i) tx_queue_.push_front(m.bytes[static_cast<std::size_t>(4 + i)]);
      return;
    }
    ++tx_seq_;
    ++in_flight_;
    ++packets_sent_;
  }
}

}  // namespace ocn::services
