#include "services/reliable.h"

#include <algorithm>
#include <cassert>

namespace ocn::services {
namespace {
constexpr std::uint64_t kDataMagic = 0x4f434e52454c3031ull;  // "OCNREL01"
constexpr std::uint64_t kAckMagic = 0x4f434e52454c3032ull;   // "OCNREL02"

/// Retries beyond this stop growing the backoff (4x the base timeout).
constexpr int kMaxBackoffShift = 2;
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t length) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < length; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count) {
  std::uint8_t bytes[64];
  std::size_t n = 0;
  for (std::size_t w = 0; w < count && n + 8 <= sizeof bytes; ++w) {
    for (int i = 0; i < 8; ++i) bytes[n++] = static_cast<std::uint8_t>(words[w] >> (8 * i));
  }
  return crc32(bytes, n);
}

ReliableChannel::ReliableChannel(core::Network& net, NodeId src, NodeId dst,
                                 Cycle retry_timeout, int service_class)
    : net_(net),
      src_(src),
      dst_(dst),
      timeout_(retry_timeout),
      service_class_(service_class),
      rng_(derive_seed(0x52454c4941424c45ull,
                       static_cast<std::uint64_t>(src) << 32 |
                           static_cast<std::uint32_t>(dst))) {
  net_.nic(dst).add_filter([this](const core::Packet& p) {
    if (p.num_flits() != 1 || p.flit_payloads[0][0] != kDataMagic || p.src != src_) {
      return false;
    }
    on_data(p);
    return true;
  });
  net_.nic(src).add_filter([this](const core::Packet& p) {
    if (p.num_flits() != 1 || p.flit_payloads[0][0] != kAckMagic || p.src != dst_) {
      return false;
    }
    on_ack(p);
    return true;
  });
  net_.kernel().add(this);
}

ReliableChannel::~ReliableChannel() { net_.kernel().remove(this); }

void ReliableChannel::send(std::uint64_t word) { tx_queue_.push_back(word); }

void ReliableChannel::set_window(int window) {
  assert(window >= 1 && window < kRxWindow);
  window_ = window;
}

void ReliableChannel::start_sequence_at(std::uint32_t seq) {
  assert(tx_queue_.empty() && pending_.empty() && received_.empty() &&
         "sequence origin must be set before any traffic");
  tx_seq_ = seq;
  rx_expected_ = seq;
}

void ReliableChannel::deliver(std::uint64_t word) {
  received_.push_back(word);
  if (handler_) handler_(word);
}

// Receiver: verify CRC, deliver in order, buffer ahead-of-gap words, and
// acknowledge cumulatively plus selectively.
void ReliableChannel::on_data(const core::Packet& p) {
  const std::uint64_t seq_word = p.flit_payloads[0][1];
  const std::uint64_t data_word = p.flit_payloads[0][2];
  const auto carried_crc = static_cast<std::uint32_t>(p.flit_payloads[0][3]);
  const std::uint64_t covered[2] = {seq_word, data_word};
  if (crc32_words(covered, 2) != carried_crc) {
    ++crc_rejects_;
    return;  // corrupted: drop silently, the sender will retry
  }
  const auto seq = static_cast<std::uint32_t>(seq_word);
  // Serial offset from the next expected sequence; modular subtraction makes
  // this correct across 32-bit wraparound (stale retransmissions land at
  // huge offsets and are dropped below).
  const std::uint32_t d = seq - rx_expected_;
  if (d == 0) {
    deliver(data_word);
    ++rx_expected_;
    if (!rx_buffer_.empty()) rx_buffer_.pop_front();
    while (!rx_buffer_.empty() && rx_buffer_.front().has_value()) {
      deliver(*rx_buffer_.front());
      ++rx_expected_;
      rx_buffer_.pop_front();
    }
  } else if (d < static_cast<std::uint32_t>(kRxWindow)) {
    if (rx_buffer_.size() <= d) rx_buffer_.resize(d + 1);
    auto& slot = rx_buffer_[d];
    if (slot.has_value()) {
      ++duplicates_;
    } else {
      slot = data_word;
    }
  } else {
    ++duplicates_;  // stale retransmission from below the window
  }
  // Ack: cumulative rx_expected_ plus a selective bitmap of buffered words
  // (bit b set means sequence rx_expected_ + 1 + b is already held). Acks
  // carry their own CRC so a corrupted ack can never acknowledge unsent or
  // undelivered data.
  std::uint64_t sack = 0;
  for (std::size_t i = 1; i < rx_buffer_.size() && i < 64; ++i) {
    if (rx_buffer_[i].has_value()) sack |= std::uint64_t{1} << (i - 1);
  }
  core::Packet ack = core::make_packet(src_, service_class_, 1);
  ack.flit_payloads[0][0] = kAckMagic;
  ack.flit_payloads[0][1] = rx_expected_;
  ack.flit_payloads[0][2] = sack;
  const std::uint64_t ack_covered[2] = {rx_expected_, sack};
  ack.flit_payloads[0][3] = crc32_words(ack_covered, 2);
  net_.nic(dst_).inject(std::move(ack), net_.now());
}

// Sender: absorb acks.
void ReliableChannel::on_ack(const core::Packet& p) {
  const std::uint64_t acked_word = p.flit_payloads[0][1];
  const std::uint64_t sack = p.flit_payloads[0][2];
  const std::uint64_t covered[2] = {acked_word, sack};
  if (crc32_words(covered, 2) != static_cast<std::uint32_t>(p.flit_payloads[0][3])) {
    ++crc_rejects_;
    return;
  }
  const auto acked_below = static_cast<std::uint32_t>(acked_word);
  while (!pending_.empty() && seq_before(pending_.front().seq, acked_below)) {
    pending_.pop_front();
  }
  for (auto& pend : pending_) {
    const std::uint32_t d = pend.seq - acked_below;
    if (d >= 1 && d < 64 && ((sack >> (d - 1)) & 1) != 0) pend.sacked = true;
  }
}

void ReliableChannel::transmit(const Pending& p, Cycle now) {
  core::Packet pkt = core::make_packet(dst_, service_class_, 1);
  pkt.flit_payloads[0][0] = kDataMagic;
  pkt.flit_payloads[0][1] = p.seq;
  pkt.flit_payloads[0][2] = p.word;
  const std::uint64_t covered[2] = {p.seq, p.word};
  pkt.flit_payloads[0][3] = crc32_words(covered, 2);
  net_.nic(src_).inject(std::move(pkt), now);
}

Cycle ReliableChannel::backoff_delay(int retries) {
  const int shift = std::min(retries, kMaxBackoffShift);
  const Cycle jitter_range = std::max<Cycle>(1, timeout_ / 8);
  return (timeout_ << shift) +
         static_cast<Cycle>(rng_.next_below(static_cast<std::uint64_t>(jitter_range)));
}

void ReliableChannel::step(Cycle now) {
  // New transmissions within the window.
  while (!tx_queue_.empty() && static_cast<int>(pending_.size()) < window_) {
    Pending p{tx_queue_.front(), tx_seq_++, now + timeout_, 0, false};
    tx_queue_.pop_front();
    transmit(p, now);
    ++words_sent_;
    pending_.push_back(p);
  }
  // Selective retransmission: every outstanding word runs its own timer, so
  // an ack that exposes a younger word never triggers an immediate spurious
  // resend, and repeated losses back off exponentially (with jitter) instead
  // of hammering the network once per timeout.
  for (auto& p : pending_) {
    if (p.sacked || now < p.next_retry_at) continue;
    transmit(p, now);
    ++p.retries;
    ++retransmissions_;
    p.next_retry_at = now + backoff_delay(p.retries);
  }
}

}  // namespace ocn::services
