#include "services/reliable.h"

namespace ocn::services {
namespace {
constexpr std::uint64_t kDataMagic = 0x4f434e52454c3031ull;  // "OCNREL01"
constexpr std::uint64_t kAckMagic = 0x4f434e52454c3032ull;   // "OCNREL02"
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t length) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < length; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count) {
  std::uint8_t bytes[64];
  std::size_t n = 0;
  for (std::size_t w = 0; w < count && n + 8 <= sizeof bytes; ++w) {
    for (int i = 0; i < 8; ++i) bytes[n++] = static_cast<std::uint8_t>(words[w] >> (8 * i));
  }
  return crc32(bytes, n);
}

ReliableChannel::ReliableChannel(core::Network& net, NodeId src, NodeId dst,
                                 Cycle retry_timeout, int service_class)
    : net_(net), src_(src), dst_(dst), timeout_(retry_timeout), service_class_(service_class) {
  // Receiver: verify CRC, deliver in order, acknowledge cumulatively.
  net_.nic(dst).add_filter([this](const core::Packet& p) {
    if (p.num_flits() != 1 || p.flit_payloads[0][0] != kDataMagic || p.src != src_) {
      return false;
    }
    const std::uint64_t seq_word = p.flit_payloads[0][1];
    const std::uint64_t data_word = p.flit_payloads[0][2];
    const auto carried_crc = static_cast<std::uint32_t>(p.flit_payloads[0][3]);
    const std::uint64_t covered[2] = {seq_word, data_word};
    if (crc32_words(covered, 2) != carried_crc) {
      ++crc_rejects_;
      return true;  // corrupted: drop silently, the sender will retry
    }
    const auto seq = static_cast<std::uint32_t>(seq_word);
    if (seq != rx_expected_) {
      ++duplicates_;  // stale retransmission or out-of-window
    } else {
      ++rx_expected_;
      received_.push_back(data_word);
      if (handler_) handler_(data_word);
    }
    // Cumulative ack of everything below rx_expected_.
    core::Packet ack = core::make_packet(src_, service_class_, 1);
    ack.flit_payloads[0][0] = kAckMagic;
    ack.flit_payloads[0][1] = rx_expected_;
    net_.nic(dst_).inject(std::move(ack), net_.now());
    return true;
  });
  // Sender: absorb acks.
  net_.nic(src).add_filter([this](const core::Packet& p) {
    if (p.num_flits() != 1 || p.flit_payloads[0][0] != kAckMagic || p.src != dst_) {
      return false;
    }
    const auto acked_below = static_cast<std::uint32_t>(p.flit_payloads[0][1]);
    while (!pending_.empty() && pending_.front().seq < acked_below) {
      pending_.pop_front();
    }
    return true;
  });
  net_.kernel().add(this);
}

void ReliableChannel::send(std::uint64_t word) { tx_queue_.push_back(word); }

void ReliableChannel::transmit(const Pending& p, Cycle now) {
  core::Packet pkt = core::make_packet(dst_, service_class_, 1);
  pkt.flit_payloads[0][0] = kDataMagic;
  pkt.flit_payloads[0][1] = p.seq;
  pkt.flit_payloads[0][2] = p.word;
  const std::uint64_t covered[2] = {p.seq, p.word};
  pkt.flit_payloads[0][3] = crc32_words(covered, 2);
  net_.nic(src_).inject(std::move(pkt), now);
}

void ReliableChannel::step(Cycle now) {
  // New transmissions within the window.
  while (!tx_queue_.empty() && static_cast<int>(pending_.size()) < window_) {
    Pending p{tx_queue_.front(), tx_seq_++, now};
    tx_queue_.pop_front();
    transmit(p, now);
    pending_.push_back(p);
  }
  // Timeout-driven retransmission (go-back style: resend the oldest).
  if (!pending_.empty() && now - pending_.front().sent_at >= timeout_) {
    pending_.front().sent_at = now;
    transmit(pending_.front(), now);
    ++retransmissions_;
  }
}

}  // namespace ocn::services
