#include "services/gateway.h"

namespace ocn::services {
namespace {
constexpr std::uint64_t kMagic = 0x4f434e47575930ull;  // "OCNGWY0"

struct Envelope {
  NodeId remote_dst;
  int service_class;
  std::uint64_t word;
  int data_bits;
};

std::optional<Envelope> decode(const core::Packet& p) {
  if (p.num_flits() != 1 || p.flit_payloads[0][0] != kMagic) return std::nullopt;
  Envelope e;
  e.remote_dst = static_cast<NodeId>(p.flit_payloads[0][1] & 0xffffffffu);
  e.service_class = static_cast<int>((p.flit_payloads[0][1] >> 32) & 0xff);
  e.data_bits = static_cast<int>((p.flit_payloads[0][1] >> 40) & 0xffff);
  e.word = p.flit_payloads[0][2];
  return e;
}
}  // namespace

core::Packet make_remote_packet(NodeId gateway_tile, NodeId remote_dst,
                                int service_class, std::uint64_t word, int data_bits) {
  core::Packet p = core::make_packet(gateway_tile, service_class, 1);
  p.flit_payloads[0][0] = kMagic;
  p.flit_payloads[0][1] = static_cast<std::uint64_t>(static_cast<std::uint32_t>(remote_dst)) |
                          (static_cast<std::uint64_t>(service_class & 0xff) << 32) |
                          (static_cast<std::uint64_t>(data_bits & 0xffff) << 40);
  p.flit_payloads[0][2] = word;
  return p;
}

ChipGateway::ChipGateway(core::Network& chip_a, NodeId tile_a, core::Network& chip_b,
                         NodeId tile_b, Cycle link_latency, int link_width_flits)
    : link_latency_(link_latency), link_width_(link_width_flits) {
  a_to_b_.from = &chip_a;
  a_to_b_.to = &chip_b;
  a_to_b_.from_tile = tile_a;
  a_to_b_.to_tile = tile_b;
  b_to_a_.from = &chip_b;
  b_to_a_.to = &chip_a;
  b_to_a_.from_tile = tile_b;
  b_to_a_.to_tile = tile_a;
  install(a_to_b_);
  install(b_to_a_);
  // Pumps run on the destination chip's kernel so arrival times use its
  // clock (the chips are assumed synchronous).
  chip_b.kernel().add(&pump_ab_);
  chip_a.kernel().add(&pump_ba_);
}

void ChipGateway::install(Direction& dir) {
  Direction* d = &dir;
  const Cycle latency = link_latency_;
  dir.from->nic(dir.from_tile).add_filter([d, latency](const core::Packet& p) {
    const auto env = decode(p);
    if (!env) return false;
    core::Packet remote = core::make_packet(env->remote_dst, env->service_class, 1,
                                            std::max(env->data_bits, 1));
    remote.flit_payloads[0][0] = env->word;
    d->queue.emplace_back(std::move(remote), d->from->now() + latency);
    return true;
  });
}

void ChipGateway::Pump::step(Cycle now) {
  int sent = 0;
  while (sent < gw_->link_width_ && !dir_->queue.empty() &&
         dir_->queue.front().second <= now) {
    // Pin-limited link: at most link_width flits enter the remote chip per
    // cycle; NIC backpressure also holds the envelope on the link.
    if (!dir_->to->nic(dir_->to_tile).inject(dir_->queue.front().first, now)) break;
    dir_->queue.pop_front();
    ++dir_->forwarded;
    ++sent;
  }
}

}  // namespace ocn::services
