// Flow-controlled data stream (paper section 2.2: "a flow-controlled data
// stream").
//
// A credit-windowed, in-order byte stream from a source tile to a sink
// tile. The source may hold at most `window` packets in flight; the sink
// returns one stream credit per consumed packet on a different service
// class. Ordering relies on the network's per-(source, class) in-order
// delivery (same VC queue, same deterministic route, wormhole integrity);
// sequence numbers are carried and checked anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/network.h"
#include "sim/stats.h"

namespace ocn::services {

class Stream final : public Clockable {
 public:
  using SinkHandler = std::function<void(const std::vector<std::uint8_t>&)>;

  Stream(core::Network& net, NodeId src, NodeId dst, int window,
         int data_class = 0, int credit_class = 1);

  /// Queue bytes at the source. Chunked into packets internally.
  void push(const std::vector<std::uint8_t>& bytes);

  /// Sink-side consumer; if unset, bytes accumulate in sink_buffer().
  void set_sink(SinkHandler handler) { sink_ = std::move(handler); }
  const std::vector<std::uint8_t>& sink_buffer() const { return sink_buffer_; }

  void step(Cycle now) override;

  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t packets_received() const { return packets_received_; }
  std::int64_t sequence_errors() const { return sequence_errors_; }
  int in_flight() const { return in_flight_; }
  std::int64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  static constexpr int kChunkBytes = 24;  // one flit minus the message header

  core::Network& net_;
  NodeId src_;
  NodeId dst_;
  int window_;
  int data_class_;
  int credit_class_;

  std::deque<std::uint8_t> tx_queue_;
  int in_flight_ = 0;
  std::uint32_t tx_seq_ = 0;
  std::uint32_t rx_seq_ = 0;

  SinkHandler sink_;
  std::vector<std::uint8_t> sink_buffer_;

  std::int64_t packets_sent_ = 0;
  std::int64_t packets_received_ = 0;
  std::int64_t sequence_errors_ = 0;
  std::int64_t bytes_delivered_ = 0;
};

}  // namespace ocn::services
