// Logical wires (the worked layering example of paper section 2.2).
//
// "Suppose tile i has a bundle of N=8 wires that should be logically
// connected to tile j. The local logic monitors these wires for changes in
// their state. Whenever the state changes, the logic arbitrates for access
// to the network input port, possibly interrupting a lower priority packet
// injection, and injects a single flit packet with data size 16, an
// appropriate virtual channel mask, and destination of tile j. Eight of the
// 16 data bits hold the state of the lines while the remaining data bits
// identify this flit as containing logical wires."
#pragma once

#include <cstdint>

#include "core/network.h"
#include "sim/stats.h"

namespace ocn::services {

class LogicalWire final : public Clockable {
 public:
  static constexpr int kWires = 8;

  /// Connects a bundle from src to dst. bundle_id distinguishes several
  /// bundles between the same pair; service_class defaults to a high
  /// priority class so wire updates overtake bulk traffic.
  LogicalWire(core::Network& net, NodeId src, NodeId dst, int bundle_id,
              int service_class = 2);

  /// Driver side: the client sets the wire states at tile src.
  void drive(std::uint8_t value) { input_ = value; }

  /// Receiver side: the reconstructed wire states at tile dst.
  std::uint8_t output() const { return output_; }
  Cycle last_update() const { return last_update_; }

  void step(Cycle now) override;

  std::int64_t updates_sent() const { return updates_sent_; }
  std::int64_t updates_received() const { return updates_received_; }
  /// Change-to-output latency in cycles.
  const Accumulator& update_latency() const { return latency_; }

 private:
  core::Network& net_;
  NodeId src_;
  NodeId dst_;
  int bundle_id_;
  int service_class_;

  std::uint8_t input_ = 0;
  std::uint8_t last_sent_ = 0;
  bool sent_anything_ = false;
  std::uint8_t output_ = 0;
  Cycle last_update_ = -1;

  std::int64_t updates_sent_ = 0;
  std::int64_t updates_received_ = 0;
  Accumulator latency_;
};

}  // namespace ocn::services
