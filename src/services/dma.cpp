#include "services/dma.h"

namespace ocn::services {

DmaEngine::DmaEngine(core::Network& net, NodeId node, int window)
    : net_(net), node_(node), window_(window), client_(net, node) {
  net_.kernel().add(this);
}

bool DmaEngine::start(NodeId server, std::uint64_t dst_addr,
                      std::vector<std::uint64_t> data, Completion done) {
  if (busy_ || data.empty()) return false;
  busy_ = true;
  server_ = server;
  dst_addr_ = dst_addr;
  data_ = std::move(data);
  next_issue_ = 0;
  outstanding_ = 0;
  completed_ = 0;
  started_ = net_.now();
  done_ = std::move(done);
  // Issue the first window synchronously so the transfer is visible to
  // Network::drain() immediately.
  issue(net_.now());
  return true;
}

void DmaEngine::issue(Cycle now) {
  while (busy_ && outstanding_ < window_ && next_issue_ < data_.size()) {
    const std::size_t i = next_issue_;
    const bool accepted = client_.write(
        server_, dst_addr_ + i, data_[i], [this](Cycle) {
          --outstanding_;
          ++completed_;
          ++words_done_;
          if (completed_ == data_.size()) {
            busy_ = false;
            const Cycle elapsed = net_.now() - started_;
            transfer_cycles_.add(static_cast<double>(elapsed));
            if (done_) done_(elapsed);
          }
        });
    if (!accepted) return;  // NIC backpressure; retry next cycle
    ++outstanding_;
    ++next_issue_;
  }
  (void)now;
}

void DmaEngine::step(Cycle now) { issue(now); }

}  // namespace ocn::services
