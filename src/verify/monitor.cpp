#include "verify/monitor.h"

#include <algorithm>
#include <stdexcept>

#include "core/interface.h"

namespace ocn::verify {

using router::Flit;
using topo::Port;

namespace {

/// Packet ids are globally unique already (each NIC seeds its counter with
/// node << 40, see Nic's constructor), so they key the in-flight map as is.
std::uint64_t packet_key(const Flit& f) {
  return static_cast<std::uint64_t>(f.packet);
}

/// Service class whose VC-pair mask equals `mask`, or -1.
int class_of_mask(std::uint8_t mask) {
  for (int c = 0; c < 4; ++c) {
    if (core::vc_mask_for_class(c) == mask) return c;
  }
  return -1;
}

}  // namespace

RuntimeMonitor::RuntimeMonitor(core::Network& net)
    : net_(net),
      cdg_(net.config(), net.routes()),
      dropping_(net.config().router.dropping()) {
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    for (int p = 0; p < topo::kNumPorts; ++p) {
      const auto port = static_cast<Port>(p);
      auto& out = net_.router_at(n).output(port);
      if (!out.attached()) continue;
      out.set_monitor([this, n, port](const Flit& f, bool bypass) {
        observe(n, port, f, bypass);
      });
    }
  }
  net_.kernel().add(this);
}

RuntimeMonitor::~RuntimeMonitor() {
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    for (int p = 0; p < topo::kNumPorts; ++p) {
      auto& out = net_.router_at(n).output(static_cast<Port>(p));
      if (out.attached()) out.set_monitor(nullptr);
    }
  }
  net_.kernel().remove(this);
}

void RuntimeMonitor::violation(std::string msg) {
  ++violation_count_;
  if (violations_.size() < static_cast<std::size_t>(kMaxStored)) {
    violations_.push_back(std::move(msg));
  }
}

RuntimeMonitor::Track& RuntimeMonitor::track_for(const Flit& f) {
  auto [it, inserted] = inflight_.try_emplace(packet_key(f));
  Track& t = it->second;
  if (!inserted) return t;

  const int n = net_.num_nodes();
  if (f.src < 0 || f.src >= n || f.dst < 0 || f.dst >= n) {
    violation("packet " + std::to_string(f.packet) +
              ": src/dst outside the topology");
    return t;  // expected stays empty: existence checks only
  }
  if (f.priority >= 1000) {
    // Pre-scheduled traffic rides the dedicated VC end to end.
    t.expected = expand_scheduled_route(net_.config(), net_.routes(), f.src, f.dst);
  } else {
    const int cls = class_of_mask(f.vc_mask);
    if (cls < 0) {
      violation("packet " + std::to_string(f.packet) + ": vc_mask " +
                std::to_string(f.vc_mask) +
                " is not a service-class VC pair");
      return t;
    }
    t.expected = expand_route(net_.config(), net_.routes(), f.src, f.dst, cls);
  }
  t.head_vc.assign(t.expected.hops(), kInvalidVc);
  t.cursor.assign(static_cast<std::size_t>(std::max(1, f.packet_flits)), 0);
  return t;
}

void RuntimeMonitor::observe(NodeId node, Port port, const Flit& f, bool bypass) {
  ++hops_checked_;
  if (f.type == router::FlitType::kCreditOnly) return;

  const int chan = cdg_.channel_id(node, port, f.vc);
  if (chan < 0) {
    violation("flit of packet " + std::to_string(f.packet) + " on n" +
              std::to_string(node) + " " + topo::port_name(port) + " vc" +
              std::to_string(f.vc) + ": no such channel in the verified CDG");
    return;
  }
  if (port == Port::kTile && f.dst != node) {
    violation("packet " + std::to_string(f.packet) + " extracted at n" +
              std::to_string(node) + ", destination is n" +
              std::to_string(f.dst));
  }

  if (dropping_) {
    // Dropping flow control sheds flits mid-route, so per-packet hop
    // tracking would leak; check the stateless invariants only (same-index
    // VC discipline: the occupied VC must belong to the class mask).
    if ((f.vc_mask & (1u << static_cast<unsigned>(f.vc))) == 0) {
      violation("packet " + std::to_string(f.packet) + ": vc" +
                std::to_string(f.vc) + " outside its class mask");
    }
    return;
  }

  Track& t = track_for(f);
  if (t.expected.empty()) return;  // untrackable; already reported

  if (f.flit_index < 0 ||
      static_cast<std::size_t>(f.flit_index) >= t.cursor.size()) {
    violation("packet " + std::to_string(f.packet) + ": flit index " +
              std::to_string(f.flit_index) + " outside the packet");
    return;
  }
  const auto i =
      static_cast<std::size_t>(t.cursor[static_cast<std::size_t>(f.flit_index)]++);
  if (i >= t.expected.hops()) {
    violation("packet " + std::to_string(f.packet) + ": flit " +
              std::to_string(f.flit_index) + " took more hops than its route (" +
              std::to_string(t.expected.hops()) + ")");
    return;
  }
  if (t.expected.nodes[i] != node || t.expected.ports[i] != port) {
    violation("packet " + std::to_string(f.packet) + " hop " +
              std::to_string(i) + ": observed n" + std::to_string(node) + " " +
              topo::port_name(port) + ", route computer expects n" +
              std::to_string(t.expected.nodes[i]) + " " +
              topo::port_name(t.expected.ports[i]));
    return;
  }
  const auto& allowed = t.expected.vc_sets[i];
  if (std::find(allowed.begin(), allowed.end(), f.vc) == allowed.end()) {
    violation("packet " + std::to_string(f.packet) + " hop " +
              std::to_string(i) + " at n" + std::to_string(node) + " " +
              topo::port_name(port) + ": vc" + std::to_string(f.vc) +
              " is not allocatable there (dateline/mask discipline)");
    return;
  }

  if (router::is_head(f.type)) {
    if (i == 0 && !cdg_.is_start(chan)) {
      violation("packet " + std::to_string(f.packet) +
                ": first hop channel " + cdg_.describe(chan) +
                " is not a legal injection channel");
    }
    if (i > 0 && !cdg_.has_edge(t.last_head_channel, chan)) {
      violation("packet " + std::to_string(f.packet) + " hop " +
                std::to_string(i) + ": " + cdg_.describe(chan) +
                " is not a CDG successor of " +
                cdg_.describe(t.last_head_channel));
    }
    t.last_head_channel = chan;
    t.head_vc[i] = f.vc;
  } else if (t.head_vc[i] != kInvalidVc && t.head_vc[i] != f.vc) {
    violation("packet " + std::to_string(f.packet) + " hop " +
              std::to_string(i) + ": body flit on vc" + std::to_string(f.vc) +
              " where the head used vc" + std::to_string(t.head_vc[i]) +
              " (wormhole interleaving)");
  }

  if (router::is_tail(f.type) && port == Port::kTile) {
    inflight_.erase(packet_key(f));
  }
  (void)bypass;
}

void RuntimeMonitor::step(Cycle now) {
  (void)now;
  const auto& topo = net_.topology();
  const auto& rp = net_.config().router;
  const int depth = rp.buffer_depth;
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    auto& rtr = net_.router_at(n);
    for (int p = 0; p < topo::kNumPorts; ++p) {
      const auto port = static_cast<Port>(p);
      const auto& out = rtr.output(port);
      if (!out.attached()) continue;
      const router::InputController* downstream = nullptr;
      if (port != Port::kTile) {
        const auto link = topo.neighbor(n, port);
        downstream = &net_.router_at(link->dst).input(link->dst_in_port);
      }
      for (VcId v = 0; v < rp.vcs; ++v) {
        ++credit_checks_;
        const int c = out.credits(v);
        if (c < 0 || c > depth) {
          std::string msg = "n";
          msg += std::to_string(n);
          msg += " ";
          msg += topo::port_name(port);
          msg += " vc";
          msg += std::to_string(v);
          msg += ": credit count ";
          msg += std::to_string(c);
          msg += " outside [0,";
          msg += std::to_string(depth);
          msg += "]";
          violation(std::move(msg));
        } else if (!dropping_ && downstream != nullptr &&
                   c + downstream->vc(v).size() > depth) {
          // Credits count free downstream slots (less those still in
          // flight), so credits + occupancy can never exceed the depth.
          std::string msg = "n";
          msg += std::to_string(n);
          msg += " ";
          msg += topo::port_name(port);
          msg += " vc";
          msg += std::to_string(v);
          msg += ": ";
          msg += std::to_string(c);
          msg += " credits + ";
          msg += std::to_string(downstream->vc(v).size());
          msg += " buffered flits exceed buffer depth ";
          msg += std::to_string(depth);
          violation(std::move(msg));
        }
      }
    }
  }
}

VerifiedNetwork::VerifiedNetwork(const core::Config& config, int shards)
    : report_(verify(config)) {
  if (!report_.ok()) {
    throw std::invalid_argument(
        "VerifiedNetwork: static verification failed:\n" + report_.to_string());
  }
  const int resolved = core::resolve_shards(shards, config.radix);
  if (resolved > 1) {
    // The sharded kernel's safety argument must be a theorem about this
    // partition, not folklore: prove it before the first tick.
    partition_analysis_ = std::make_unique<analyze::AnalysisReport>(
        analyze::analyze_config(config, resolved));
    if (!partition_analysis_->ok()) {
      throw std::invalid_argument(
          "VerifiedNetwork: concurrency-safety analysis refused the shard "
          "partition:\n" +
          partition_analysis_->to_string());
    }
  }
  net_ = std::make_unique<core::Network>(config, resolved);
  monitor_ = std::make_unique<RuntimeMonitor>(*net_);
}

}  // namespace ocn::verify
