#include "verify/cdg.h"

#include <algorithm>
#include <cassert>

#include "core/interface.h"

namespace ocn::verify {

using topo::Port;

namespace {

/// VCs the allocator could grant on one hop. `want_odd` is the dateline
/// parity the packet will have on the link (Router::effective_dateline).
std::vector<VcId> hop_vc_set(const router::RouterParams& rp, int service_class,
                             Port out, bool want_odd, bool scheduled) {
  std::vector<VcId> set;
  if (scheduled) {
    set.push_back(rp.scheduled_vc);
    return set;
  }
  const std::uint8_t mask = core::vc_mask_for_class(service_class);
  for (VcId v = 0; v < rp.vcs; ++v) {
    if ((mask & (1u << static_cast<unsigned>(v))) == 0) continue;
    if (rp.exclusive_scheduled_vc && v == rp.scheduled_vc) continue;
    if (rp.dropping()) {
      // Dropping flow control keeps the injection VC index across hops
      // (VcAllocator::allocate_exact), so the class's even VC is the only
      // channel the packet ever occupies.
      if (v != static_cast<VcId>(2 * service_class) && rp.vcs != 1) continue;
    } else if (rp.enforce_vc_parity && out != Port::kTile) {
      // Dateline discipline: parity must match on direction ports; the
      // ejection port allocates with ignore_parity (the dateline scheme
      // does not apply there), so both members stay eligible.
      if ((v % 2 != 0) != want_odd) continue;
    }
    set.push_back(v);
  }
  return set;
}

RouteExpansion expand(const core::Config& config,
                      const routing::RouteComputer& routes, NodeId src,
                      NodeId dst, int service_class, bool scheduled) {
  const topo::Topology& topo = routes.topology();
  RouteExpansion e;
  const auto path = routes.port_path(src, dst);
  if (path.empty()) return e;
  e.nodes.reserve(path.size());
  e.ports.reserve(path.size());
  e.vc_sets.reserve(path.size());

  // Replicates the flit's dateline state: reset when entering the network
  // or changing dimension, set when the hop crosses the ring's dateline
  // (exactly Router::effective_dateline, which both the allocator's
  // want_odd and the stored flit state are derived from).
  bool crossed = false;
  NodeId node = src;
  Port in = Port::kTile;
  for (const Port out : path) {
    bool eff = crossed;
    if (out != Port::kTile) {
      if (in == Port::kTile || topo::dim_of(in) != topo::dim_of(out)) {
        eff = false;
      }
      if (topo.crosses_dateline(node, out)) eff = true;
    }
    e.nodes.push_back(node);
    e.ports.push_back(out);
    e.vc_sets.push_back(
        hop_vc_set(config.router, service_class, out, eff, scheduled));
    if (out != Port::kTile) {
      node = topo.neighbor(node, out)->dst;
      crossed = eff;
      in = out;
    }
  }
  return e;
}

}  // namespace

RouteExpansion expand_route(const core::Config& config,
                            const routing::RouteComputer& routes, NodeId src,
                            NodeId dst, int service_class) {
  return expand(config, routes, src, dst, service_class, /*scheduled=*/false);
}

RouteExpansion expand_scheduled_route(const core::Config& config,
                                      const routing::RouteComputer& routes,
                                      NodeId src, NodeId dst) {
  return expand(config, routes, src, dst, /*service_class=*/0,
                /*scheduled=*/true);
}

std::vector<int> dynamic_classes(const core::Config& config) {
  std::vector<int> classes;
  const auto& rp = config.router;
  const int max_classes = rp.vcs == 1 ? 1 : rp.vcs / 2;
  for (int c = 0; c < std::min(4, max_classes); ++c) {
    if (rp.exclusive_scheduled_vc && c == rp.scheduled_vc / 2) continue;
    classes.push_back(c);
  }
  return classes;
}

Cdg::Cdg(const core::Config& config, const routing::RouteComputer& routes)
    : topo_(&routes.topology()), vcs_(config.router.vcs) {
  const topo::Topology& topo = *topo_;
  num_nodes_ = topo.num_nodes();

  // Enumerate channels: every existing direction link plus the ejection
  // channel of each router, times the VC count.
  id_map_.assign(
      static_cast<std::size_t>(num_nodes_) * topo::kNumPorts *
          static_cast<std::size_t>(vcs_),
      -1);
  auto slot = [&](NodeId n, Port p, VcId v) -> int& {
    return id_map_[(static_cast<std::size_t>(n) * topo::kNumPorts +
                    static_cast<std::size_t>(p)) *
                       static_cast<std::size_t>(vcs_) +
                   static_cast<std::size_t>(v)];
  };
  for (NodeId n = 0; n < num_nodes_; ++n) {
    for (int p = 0; p < topo::kNumPorts; ++p) {
      const auto port = static_cast<Port>(p);
      if (port != Port::kTile && !topo.neighbor(n, port).has_value()) continue;
      for (VcId v = 0; v < vcs_; ++v) {
        slot(n, port, v) = static_cast<int>(channels_.size());
        channels_.push_back(ChannelNode{n, port, v});
      }
    }
  }
  adj_.resize(channels_.size());
  start_.assign(channels_.size(), false);

  // Dependencies induced by every dynamic route. A packet holding the VC of
  // hop i requests a VC of hop i+1: edge for every pair the allocator could
  // produce. Scheduled flows add their fixed-VC chains as well; their slots
  // are conflict-free by construction, but the channels are still held
  // across cycles whenever a bypass hop waits on a credit.
  const auto classes = dynamic_classes(config);
  for (NodeId s = 0; s < num_nodes_; ++s) {
    for (NodeId d = 0; d < num_nodes_; ++d) {
      if (s == d) continue;
      for (const int c : classes) {
        const RouteExpansion e = expand_route(config, routes, s, d, c);
        for (std::size_t i = 0; i < e.hops(); ++i) {
          for (const VcId v : e.vc_sets[i]) {
            const int id = slot(e.nodes[i], e.ports[i], v);
            if (i == 0) start_[static_cast<std::size_t>(id)] = true;
            if (i + 1 == e.hops()) continue;
            for (const VcId w : e.vc_sets[i + 1]) {
              add_edge(id, slot(e.nodes[i + 1], e.ports[i + 1], w));
            }
          }
        }
      }
      if (config.router.exclusive_scheduled_vc) {
        const RouteExpansion e = expand_scheduled_route(config, routes, s, d);
        for (std::size_t i = 0; i < e.hops(); ++i) {
          const int id = slot(e.nodes[i], e.ports[i], config.router.scheduled_vc);
          if (i == 0) start_[static_cast<std::size_t>(id)] = true;
          if (i + 1 == e.hops()) continue;
          add_edge(id,
                   slot(e.nodes[i + 1], e.ports[i + 1], config.router.scheduled_vc));
        }
      }
    }
  }

  num_edges_ = 0;
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    num_edges_ += static_cast<std::int64_t>(nbrs.size());
  }
}

void Cdg::add_edge(int from, int to) {
  adj_[static_cast<std::size_t>(from)].push_back(to);
}

int Cdg::channel_id(NodeId src, Port port, VcId vc) const {
  if (src < 0 || src >= num_nodes_ || vc < 0 || vc >= vcs_) return -1;
  return id_map_[(static_cast<std::size_t>(src) * topo::kNumPorts +
                  static_cast<std::size_t>(port)) *
                     static_cast<std::size_t>(vcs_) +
                 static_cast<std::size_t>(vc)];
}

bool Cdg::has_edge(int from, int to) const {
  if (from < 0 || to < 0) return false;
  const auto& nbrs = adj_[static_cast<std::size_t>(from)];
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

std::vector<int> Cdg::find_cycle() const {
  // Iterative DFS with three colours; a gray-to-gray edge closes a cycle,
  // recovered from the explicit stack so the report shows the actual
  // dependency path.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(channels_.size(), kWhite);
  struct Frame {
    int node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (int root = 0; root < num_channels(); ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    stack.push_back({root});
    color[static_cast<std::size_t>(root)] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nbrs = adj_[static_cast<std::size_t>(f.node)];
      if (f.next < nbrs.size()) {
        const int n = nbrs[f.next++];
        if (color[static_cast<std::size_t>(n)] == kGray) {
          // Extract the cycle: the stack suffix from n (inclusive — gray
          // nodes are exactly the on-stack nodes) up to the top, whose edge
          // back to n closes it.
          std::vector<int> cycle;
          std::size_t i = stack.size();
          while (i > 0 && stack[i - 1].node != n) --i;
          assert(i > 0 && "gray neighbor must be on the DFS stack");
          for (--i; i < stack.size(); ++i) cycle.push_back(stack[i].node);
          return cycle;
        }
        if (color[static_cast<std::size_t>(n)] == kWhite) {
          color[static_cast<std::size_t>(n)] = kGray;
          stack.push_back({n});
        }
      } else {
        color[static_cast<std::size_t>(f.node)] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

std::string Cdg::describe(int id) const {
  // channel_id() returns -1 for (node, port, vc) triples outside the CDG —
  // e.g. a rogue flit the monitor observed on a VC no route may use. Such an
  // id names no channel, so describe it as such instead of indexing with it.
  if (id < 0 || static_cast<std::size_t>(id) >= channels_.size()) {
    return "<no such channel (id " + std::to_string(id) + ")>";
  }
  const ChannelNode& c = channel(id);
  std::string s = "n" + std::to_string(c.src);
  if (c.port == Port::kTile) {
    s += " --eject";
  } else {
    // Ids are only handed out for ports with a live link, so neighbor() is
    // always engaged here.
    s += " --" + std::string(topo::port_name(c.port)) + "--> n" +
         std::to_string(topo_->neighbor(c.src, c.port)->dst);
  }
  s += " [vc" + std::to_string(c.vc) + "]";
  return s;
}

std::string Cdg::describe_cycle(const std::vector<int>& cycle) const {
  std::string s;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) s += " -> ";
    s += describe(cycle[i]);
  }
  if (!cycle.empty()) s += " -> (closes at " + describe(cycle.front()) + ")";
  return s;
}

}  // namespace ocn::verify
