#include "verify/verifier.h"

#include <algorithm>
#include <map>

#include "verify/cdg.h"

namespace ocn::verify {

using topo::Port;

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

bool Report::has(Severity at_least) const {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return static_cast<int>(f.severity) >= static_cast<int>(at_least);
  });
}

std::string Report::to_string() const {
  std::string s;
  if (proof_ran) {
    s += "channel-dependency graph: " + std::to_string(channels) +
         " channels, " + std::to_string(edges) + " edges\n";
    if (deadlock_free) {
      s += "PROVED deadlock-free: the channel-dependency graph is acyclic\n";
    } else {
      s += "DEADLOCK POSSIBLE: dependency cycle of length " +
           std::to_string(cycle.size()) + ":\n";
      for (const auto& c : cycle) s += "  " + c + "\n";
      if (!cycle.empty()) s += "  -> closes back at " + cycle.front() + "\n";
    }
    s += "routes: " + std::to_string(routes_linted) +
         " linted, widest encoding " + std::to_string(max_route_bits) +
         " of " + std::to_string(routing::SourceRoute::kPaperRouteBits) +
         " route bits\n";
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "credit loop: round trip %d cycles, per-VC throughput bound "
                  "%.2f\n",
                  credit_round_trip, per_vc_throughput_bound);
    s += buf;
  }
  for (const auto& f : findings) {
    s += std::string(severity_name(f.severity)) + "[" + f.code +
         "]: " + f.message + "\n";
  }
  if (findings.empty()) s += "no findings\n";
  return s;
}

std::vector<Finding> lint_route(const core::Config& config,
                                const routing::RouteComputer& routes,
                                NodeId src, NodeId dst,
                                const routing::SourceRoute& route) {
  using routing::TurnCode;
  const topo::Topology& topo = routes.topology();
  std::vector<Finding> out;
  auto add = [&](Severity s, const char* code, std::string msg) {
    out.push_back({s, code, std::move(msg)});
  };
  const std::string pair =
      "route " + std::to_string(src) + "->" + std::to_string(dst);

  if (src == dst) {
    // Self-delivery never enters the network (the encoding has no zero-hop
    // form); any entries would be decoded as a real route.
    if (!route.empty()) {
      add(Severity::kError, "route-self",
          pair + ": self-addressed packets must carry an empty route");
    }
    return out;
  }
  if (route.empty()) {
    add(Severity::kError, "route-empty",
        pair + ": empty route for distinct source and destination");
    return out;
  }

  routing::SourceRoute r = route;
  Port heading = routing::injection_port(r.pop());
  NodeId node = src;
  int hops = 0;
  bool col_seen = false;
  bool extracted = false;
  while (true) {
    if (topo::dim_of(heading) == 1) {
      col_seen = true;
    } else if (col_seen) {
      add(Severity::kError, "route-dimension-order",
          pair + ": row move after a column move at node " +
              std::to_string(node) +
              " (violates the row-then-column turn model the deadlock proof "
              "assumes)");
      return out;
    }
    const auto link = topo.neighbor(node, heading);
    if (!link.has_value()) {
      add(Severity::kError, "route-off-topology",
          pair + ": hop " + std::to_string(hops) + " leaves node " +
              std::to_string(node) + " through " + topo::port_name(heading) +
              ", which has no link (mesh boundary)");
      return out;
    }
    node = link->dst;
    ++hops;
    if (r.empty()) {
      add(Severity::kError, "route-no-extract",
          pair + ": route exhausted after " + std::to_string(hops) +
              " hops without an extract entry (the packet would arrive with "
              "an empty route field)");
      return out;
    }
    const auto code = static_cast<TurnCode>(r.pop());
    if (code == TurnCode::kExtract) {
      extracted = true;
      break;
    }
    heading = routing::apply_turn(heading, code);
  }

  if (extracted && node != dst) {
    add(Severity::kError, "route-wrong-destination",
        pair + ": extracts at node " + std::to_string(node) +
            " instead of the destination");
  }
  if (extracted && node == dst) {
    const int min = topo.min_hops(src, dst);
    if (hops > min) {
      add(Severity::kWarning, "route-non-minimal",
          pair + ": " + std::to_string(hops) + " hops, minimum is " +
              std::to_string(min));
    }
  }
  if (!r.empty()) {
    add(Severity::kNote, "route-trailing-bits",
        pair + ": " + std::to_string(r.size()) +
            " entries after the extract (ignored by the decode, usable as "
            "data)");
  }
  if (route.bits_required() > routing::SourceRoute::kPaperRouteBits) {
    add(Severity::kWarning, "route-overflow",
        pair + ": needs " + std::to_string(route.bits_required()) +
            " bits, exceeding the paper's " +
            std::to_string(routing::SourceRoute::kPaperRouteBits) +
            "-bit route field (the simulator carries up to " +
            std::to_string(2 * routing::SourceRoute::kMaxEntries) + ")");
  }
  (void)config;
  return out;
}

namespace {

/// Cheap structural checks that must hold before a Topology/RouteComputer
/// can even be built. Mirrors (a subset of) Config::validate, but reports
/// instead of throwing.
bool precheck(const core::Config& c, std::vector<Finding>& findings) {
  auto err = [&](const char* code, std::string msg) {
    findings.push_back({Severity::kError, code, std::move(msg)});
  };
  bool ok = true;
  if (c.radix < 2) {
    err("config-radix", "radix must be >= 2, got " + std::to_string(c.radix));
    ok = false;
  }
  if (c.router.vcs < 1 || c.router.vcs > 8) {
    err("config-vcs",
        "vcs must be in [1,8] (8-bit VC mask), got " +
            std::to_string(c.router.vcs));
    ok = false;
  }
  if (c.router.buffer_depth < 1) {
    err("config-depth", "buffer_depth must be >= 1, got " +
                            std::to_string(c.router.buffer_depth));
    ok = false;
  }
  if (c.link_latency < 1) {
    err("config-link-latency",
        "link_latency must be >= 1, got " + std::to_string(c.link_latency));
    ok = false;
  }
  if (ok && (c.router.scheduled_vc < 0 || c.router.scheduled_vc >= c.router.vcs)) {
    err("config-scheduled-vc",
        "scheduled_vc " + std::to_string(c.router.scheduled_vc) +
            " out of range [0," + std::to_string(c.router.vcs) + ")");
    ok = false;
  }
  if (c.router.enforce_vc_parity && c.router.vcs % 2 != 0) {
    err("config-vc-parity",
        "enforce_vc_parity pairs VCs {2c, 2c+1}; the VC count must be even, "
        "got " +
            std::to_string(c.router.vcs));
    // Analysis can still proceed: the reachability lint below shows the
    // consequence (the orphan class wedges after a dateline crossing).
  }
  return ok;
}

/// Aggregate per-route findings so n^2 identical diagnostics collapse into
/// one finding carrying an affected-route count.
class FindingAggregator {
 public:
  void add(const Finding& f) {
    auto [it, inserted] = first_.try_emplace(f.code, f);
    ++count_[f.code];
    (void)it;
    (void)inserted;
  }
  void flush(std::vector<Finding>& out) const {
    for (const auto& [code, f] : first_) {
      Finding merged = f;
      const int n = count_.at(code);
      if (n > 1) {
        merged.message += " (and " + std::to_string(n - 1) + " more routes)";
      }
      out.push_back(std::move(merged));
    }
  }

 private:
  std::map<std::string, Finding> first_;
  std::map<std::string, int> count_;
};

}  // namespace

Report verify(const core::Config& config) {
  Report rep;
  auto add = [&](Severity s, const char* code, std::string msg) {
    rep.findings.push_back({s, code, std::move(msg)});
  };

  if (!precheck(config, rep.findings)) return rep;

  const auto topology = config.make_topology();
  const routing::RouteComputer routes(*topology);
  const int n = topology->num_nodes();

  // --- (1) channel-dependency-graph deadlock proof --------------------------
  const Cdg cdg(config, routes);
  rep.channels = cdg.num_channels();
  rep.edges = cdg.num_edges();
  rep.proof_ran = true;
  const auto cycle = cdg.find_cycle();
  rep.deadlock_free = cycle.empty();
  if (cycle.empty()) {
    add(Severity::kNote, "cdg-acyclic",
        "channel-dependency graph acyclic (" + std::to_string(rep.channels) +
            " channels, " + std::to_string(rep.edges) +
            " edges): deadlock-free for every packet the NIC can inject");
  } else {
    rep.cycle.reserve(cycle.size());
    for (const int id : cycle) rep.cycle.push_back(cdg.describe(id));
    const bool dropping = config.router.dropping();
    std::string msg = "channel-dependency cycle of length " +
                      std::to_string(cycle.size()) + ": " +
                      cdg.describe_cycle(cycle);
    if (dropping) {
      // Dropping flow control sheds arriving packets rather than blocking
      // them, so a cyclic hold-wait is unreachable in steady state — but
      // the static proof no longer holds unconditionally.
      add(Severity::kWarning, "cdg-cycle",
          msg + " — dropping flow control resolves contention by dropping, "
                "but deadlock freedom is not statically proven");
    } else {
      add(Severity::kError, "cdg-cycle", msg);
    }
  }

  // --- (2) route lint + per-class VC reachability ---------------------------
  FindingAggregator agg;
  const auto classes = dynamic_classes(config);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto route = routes.compute(s, d);
      rep.max_route_bits = std::max(rep.max_route_bits, route.bits_required());
      ++rep.routes_linted;
      for (const auto& f : lint_route(config, routes, s, d, route)) {
        agg.add(f);
      }
      for (const int c : classes) {
        const RouteExpansion e = expand_route(config, routes, s, d, c);
        for (std::size_t i = 0; i < e.hops(); ++i) {
          if (!e.vc_sets[i].empty()) continue;
          agg.add({Severity::kError, "vc-unreachable",
                   "class " + std::to_string(c) + " route " +
                       std::to_string(s) + "->" + std::to_string(d) +
                       ": no allocatable VC at hop " + std::to_string(i) +
                       " (node " + std::to_string(e.nodes[i]) + " port " +
                       topo::port_name(e.ports[i]) +
                       ") — the packet would wedge there forever"});
          break;
        }
      }
    }
  }
  agg.flush(rep.findings);

  // --- (3) credit-loop and buffer-sizing arithmetic -------------------------
  // A credit takes link_latency cycles back, the freed slot's next flit
  // link_latency forward, plus the one-cycle router traversal (docs/ROUTER.md
  // timing table). Piggybacked credits wait for a reverse-direction flit or
  // a credit-only filler, adding a cycle of queueing at best.
  rep.credit_round_trip =
      2 * config.link_latency + 1 + (config.router.piggyback_credits ? 1 : 0);
  const double depth = config.router.buffer_depth;
  rep.per_vc_throughput_bound =
      std::min(1.0, depth / static_cast<double>(rep.credit_round_trip));
  if (config.router.flow_control == router::FlowControl::kVirtualChannel) {
    if (config.router.buffer_depth < rep.credit_round_trip) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "buffer_depth %d < credit round trip %d: one VC sustains "
                    "at most %.0f%% of link rate; %d VCs together %s saturate "
                    "the link",
                    config.router.buffer_depth, rep.credit_round_trip,
                    100.0 * rep.per_vc_throughput_bound, config.router.vcs,
                    config.router.vcs * config.router.buffer_depth >=
                            rep.credit_round_trip
                        ? "can still"
                        : "cannot");
      add(config.router.vcs * config.router.buffer_depth >=
                  rep.credit_round_trip
              ? Severity::kNote
              : Severity::kWarning,
          "credit-starved", buf);
    } else {
      add(Severity::kNote, "credit-ok",
          "per-VC buffering (" + std::to_string(config.router.buffer_depth) +
              " flits) covers the " + std::to_string(rep.credit_round_trip) +
              "-cycle credit round trip: full per-VC throughput");
    }
  }

  return rep;
}

}  // namespace ocn::verify
