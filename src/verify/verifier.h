// Static network verifier: proves, before a single cycle is simulated, the
// properties the simulator otherwise only checks dynamically —
//
//   1. deadlock freedom, by cycle detection over the channel-dependency
//      graph (cdg.h) induced by all producible routes and the dateline VC
//      discipline; a failed proof reports the offending dependency cycle;
//   2. route well-formedness, by linting every producible source route
//      (stays on the topology, single row-then-column turn, extracts at the
//      destination, encoding fits the paper's 16-bit field) and checking
//      per-class VC reachability on every hop;
//   3. credit-loop arithmetic: round-trip credit latency vs per-VC buffer
//      depth, flagging configurations that cannot sustain full throughput.
//
// Unlike Config::validate(), verify() never throws: configurations the
// constructor would reject outright (e.g. a dateline-disabled torus) are
// still analysed so the failure can be *explained* — the CDG cycle is the
// counterexample the validate() rule merely asserts away.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "routing/route_computer.h"

namespace ocn::verify {

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity s);

struct Finding {
  Severity severity = Severity::kNote;
  std::string code;     ///< stable machine-readable tag, e.g. "cdg-cycle"
  std::string message;  ///< human-readable explanation
};

struct Report {
  std::vector<Finding> findings;

  // --- CDG deadlock proof ---------------------------------------------------
  bool proof_ran = false;
  bool deadlock_free = false;
  /// Readable channel descriptions of one offending dependency cycle.
  std::vector<std::string> cycle;
  int channels = 0;
  std::int64_t edges = 0;

  // --- route lint -----------------------------------------------------------
  int routes_linted = 0;
  int max_route_bits = 0;

  // --- credit-loop arithmetic -----------------------------------------------
  int credit_round_trip = 0;
  /// min(1, buffer_depth / round_trip): the steady-state fraction of link
  /// rate one VC can sustain.
  double per_vc_throughput_bound = 0.0;

  bool has(Severity at_least) const;
  /// No error-severity findings (warnings allowed).
  bool ok() const { return !has(Severity::kError); }
  std::string to_string() const;
};

/// Run the full static analysis on a configuration.
Report verify(const core::Config& config);

/// Lint one encoded source route from src against the topology. Returns the
/// empty vector for a clean route. Exposed separately so malformed-route
/// corpora (and the monitor's diagnostics) can exercise the linter directly.
std::vector<Finding> lint_route(const core::Config& config,
                                const routing::RouteComputer& routes,
                                NodeId src, NodeId dst,
                                const routing::SourceRoute& route);

}  // namespace ocn::verify
