// Channel-dependency graph over (link, virtual channel) pairs.
//
// Dally's deadlock criterion: a routing function is deadlock-free iff the
// graph whose nodes are the network's channels and whose edges connect every
// channel a packet may hold to every channel it may request next is acyclic.
// Here a channel is one (upstream router, output port, VC) triple — the
// resource a packet owns from VC allocation until its tail crosses the link —
// and the edges are derived statically from every producible source route
// plus the dateline VC-transition rules the allocator enforces
// (Router::effective_dateline / VcAllocator::allocate).
//
// The same per-hop expansion (expand_route) feeds three consumers: the CDG
// builder, the verifier's VC-reachability lint, and the RuntimeMonitor's
// per-packet hop checks during simulation.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "routing/route_computer.h"
#include "topo/topology.h"

namespace ocn::verify {

/// One CDG node: the VC `vc` of the link leaving router `src` through
/// `port`. `port == kTile` names the ejection channel into the NIC.
struct ChannelNode {
  NodeId src = kInvalidNode;
  topo::Port port = topo::Port::kTile;
  VcId vc = kInvalidVc;
};

/// Hop-by-hop expansion of the route src -> dst for one service class:
/// the router driving hop i, the output port taken, and the set of VCs the
/// allocator could grant on that hop (singleton under the dateline parity
/// discipline on direction ports; the whole class pair at the ejection port
/// where parity is ignored; the injection VC alone in dropping mode, which
/// keeps the VC index end to end).
struct RouteExpansion {
  std::vector<NodeId> nodes;
  std::vector<topo::Port> ports;
  std::vector<std::vector<VcId>> vc_sets;

  bool empty() const { return ports.empty(); }
  std::size_t hops() const { return ports.size(); }
};

RouteExpansion expand_route(const core::Config& config,
                            const routing::RouteComputer& routes, NodeId src,
                            NodeId dst, int service_class);

/// Expansion for a pre-scheduled flow: same port path, but every hop rides
/// the dedicated scheduled VC (reservation bypass skips allocation).
RouteExpansion expand_scheduled_route(const core::Config& config,
                                      const routing::RouteComputer& routes,
                                      NodeId src, NodeId dst);

/// Service classes dynamic traffic may inject under this configuration
/// (class pair must exist within the VC count; the scheduled class is closed
/// when exclusive_scheduled_vc — Nic::inject refuses it).
std::vector<int> dynamic_classes(const core::Config& config);

class Cdg {
 public:
  Cdg(const core::Config& config, const routing::RouteComputer& routes);

  int num_channels() const { return static_cast<int>(channels_.size()); }
  std::int64_t num_edges() const { return num_edges_; }

  /// Channel id for (src, port, vc); -1 when the port has no link (mesh
  /// boundary) or the VC is out of range.
  int channel_id(NodeId src, topo::Port port, VcId vc) const;
  const ChannelNode& channel(int id) const {
    return channels_[static_cast<std::size_t>(id)];
  }

  bool has_edge(int from, int to) const;
  /// True when some route's first hop can occupy this channel.
  bool is_start(int id) const { return start_[static_cast<std::size_t>(id)]; }

  /// One dependency cycle as a channel-id sequence (the edge from the last
  /// entry back to the first closes it), or empty when the graph is acyclic
  /// — the deadlock-freedom proof.
  std::vector<int> find_cycle() const;

  std::string describe(int id) const;
  std::string describe_cycle(const std::vector<int>& cycle) const;

 private:
  void add_edge(int from, int to);

  const topo::Topology* topo_ = nullptr;
  int vcs_ = 0;
  int num_nodes_ = 0;
  std::vector<ChannelNode> channels_;
  std::vector<int> id_map_;            // (node, port, vc) -> channel id
  std::vector<std::vector<int>> adj_;  // sorted, deduplicated
  std::vector<bool> start_;
  std::int64_t num_edges_ = 0;
};

}  // namespace ocn::verify
