// Live protocol monitor: cross-checks a running simulation against the
// statically verified model.
//
// What the verifier *proves* (verifier.h) the monitor *observes*:
//   * every flit driven onto a link must occupy a channel of the verified
//     CDG, follow its packet's expected port path, use a VC the allocator
//     is allowed to grant on that hop, and (for head flits) traverse only
//     CDG edges starting from a legal first-hop channel;
//   * body/tail flits must ride exactly the VC their head claimed per hop
//     (wormholes never interleave on a VC);
//   * every output controller's credit count must stay within the statically
//     derived bounds: 0 <= credits <= buffer_depth, and credits plus the
//     downstream buffer occupancy never exceed the buffer depth.
//
// The monitor attaches non-invasively: a per-output observer hook for flit
// hops (OutputController::set_monitor) plus a kernel-registered Clockable
// for the per-cycle credit sweep. Destruction detaches both, so a monitor
// can be scoped to part of a simulation.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/analyzer.h"
#include "core/network.h"
#include "verify/cdg.h"
#include "verify/verifier.h"

namespace ocn::verify {

class RuntimeMonitor final : public Clockable {
 public:
  /// Attaches to the network. The monitor must be destroyed (or the network
  /// no longer stepped) before the network is destroyed.
  explicit RuntimeMonitor(core::Network& net);
  ~RuntimeMonitor() override;
  RuntimeMonitor(const RuntimeMonitor&) = delete;
  RuntimeMonitor& operator=(const RuntimeMonitor&) = delete;

  /// Per-cycle credit-bound sweep.
  void step(Cycle now) override;

  bool ok() const { return violation_count_ == 0; }
  std::int64_t violation_count() const { return violation_count_; }
  /// First kMaxStored violation messages (the count keeps rising past it).
  const std::vector<std::string>& violations() const { return violations_; }

  std::int64_t hops_checked() const { return hops_checked_; }
  std::int64_t credit_checks() const { return credit_checks_; }
  /// Packets currently tracked mid-flight (should drain to 0 with traffic).
  std::size_t packets_in_flight() const { return inflight_.size(); }

  const Cdg& cdg() const { return cdg_; }

  static constexpr int kMaxStored = 64;

 private:
  struct Track {
    RouteExpansion expected;
    std::vector<VcId> head_vc;   ///< VC the head used per hop
    std::vector<int> cursor;     ///< next expected hop per flit index
    int last_head_channel = -1;  ///< CDG node of the head's previous hop
  };

  void observe(NodeId node, topo::Port port, const router::Flit& f, bool bypass);
  void violation(std::string msg);
  Track& track_for(const router::Flit& f);

  core::Network& net_;
  Cdg cdg_;
  bool dropping_ = false;
  std::unordered_map<std::uint64_t, Track> inflight_;
  std::vector<std::string> violations_;
  std::int64_t violation_count_ = 0;
  std::int64_t hops_checked_ = 0;
  std::int64_t credit_checks_ = 0;
};

/// Network-construction option bundling the whole subsystem: run the static
/// verifier, refuse to build when it finds errors (the exception message
/// carries the report, including any CDG cycle), then build the network
/// with the runtime monitor attached.
class VerifiedNetwork {
 public:
  /// Throws std::invalid_argument carrying Report::to_string() when the
  /// static proof fails. `shards` follows core::Network's convention
  /// (0 = OCN_SIM_SHARDS env, clamped to [1, radix]); when the resolved
  /// count is > 1 the concurrency-safety analyzer (src/analyze) must
  /// additionally prove the row-strip partition race-free and
  /// determinism-preserving, so a sharded network is never constructed
  /// over an unproven partition.
  explicit VerifiedNetwork(const core::Config& config, int shards = 0);

  const Report& report() const { return report_; }
  /// The concurrency-safety verdict; null when the network is unsharded.
  const analyze::AnalysisReport* partition_analysis() const {
    return partition_analysis_.get();
  }
  core::Network& network() { return *net_; }
  const core::Network& network() const { return *net_; }
  RuntimeMonitor& monitor() { return *monitor_; }
  const RuntimeMonitor& monitor() const { return *monitor_; }

 private:
  Report report_;
  std::unique_ptr<analyze::AnalysisReport> partition_analysis_;
  std::unique_ptr<core::Network> net_;
  std::unique_ptr<RuntimeMonitor> monitor_;  // declared after net_: detaches first
};

}  // namespace ocn::verify
