// 2-D folded torus: the paper's baseline network (section 2).
//
// Each row/column ring of k physically colinear tiles is cyclically
// connected in interleaved order so no wire spans more than two tile
// pitches. For k=4 the order is 0,2,3,1 — exactly the paper's "nodes 0-3 in
// each row cyclically connected in the order 0,2,3,1" — giving link lengths
// 2,1,2,1 pitches. In general the ring visits 0,2,4,...,then back down the
// odd positions.
#pragma once

#include "topo/topology.h"

namespace ocn::topo {

class FoldedTorus final : public Topology {
 public:
  FoldedTorus(int radix, double tile_mm);

  std::string name() const override;
  std::optional<Link> neighbor(NodeId n, Port out) const override;
  bool crosses_dateline(NodeId n, Port out) const override;
  bool has_wraparound() const override { return true; }
  int bisection_channels() const override { return 4 * radix_; }
  int ring_index(NodeId n, int dim) const override;

  /// Physical position of the i-th node in ring order (e.g. {0,2,3,1} for k=4).
  const std::vector<int>& ring_order() const { return perm_; }

 private:
  std::vector<int> perm_;      // ring index -> physical position
  std::vector<int> inv_perm_;  // physical position -> ring index
};

}  // namespace ocn::topo
