#include "topo/mesh.h"

namespace ocn::topo {

std::string Mesh::name() const { return "mesh" + std::to_string(radix_) + "x" + std::to_string(radix_); }

std::optional<Link> Mesh::neighbor(NodeId n, Port out) const {
  int x = x_of(n);
  int y = y_of(n);
  switch (out) {
    case Port::kRowPos: ++x; break;
    case Port::kRowNeg: --x; break;
    case Port::kColPos: ++y; break;
    case Port::kColNeg: --y; break;
    case Port::kTile: return std::nullopt;
  }
  if (x < 0 || x >= radix_ || y < 0 || y >= radix_) return std::nullopt;
  return Link{node_at(x, y), out, tile_mm_};
}

}  // namespace ocn::topo
