// Topology abstraction for 2-D tiled on-chip networks (paper section 2).
//
// Ports are named logically rather than by compass direction because the
// folded torus places both ring neighbours of an end node on the same
// physical side of the tile. A flit travelling in the +row direction leaves
// through output port kRowPos and arrives at the downstream router's input
// controller kRowPos (input controllers are named by direction of travel).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace ocn::topo {

enum class Port : int {
  kRowPos = 0,  ///< +1 in row-ring order
  kRowNeg = 1,  ///< -1 in row-ring order
  kColPos = 2,  ///< +1 in column-ring order
  kColNeg = 3,  ///< -1 in column-ring order
  kTile = 4,    ///< the local client (injection/extraction)
};

inline constexpr int kNumPorts = 5;
inline constexpr int kNumDirPorts = 4;

const char* port_name(Port p);

/// True for row-dimension ports.
inline bool is_row(Port p) { return p == Port::kRowPos || p == Port::kRowNeg; }
/// True for +direction ports.
inline bool is_positive(Port p) { return p == Port::kRowPos || p == Port::kColPos; }
/// Dimension index: 0 = row, 1 = column. kTile has no dimension.
inline int dim_of(Port p) { return is_row(p) ? 0 : 1; }

/// The opposite-direction port (the link credits piggyback on); kTile maps
/// to itself (the NIC's inject/eject pair).
inline Port reverse(Port p) {
  switch (p) {
    case Port::kRowPos: return Port::kRowNeg;
    case Port::kRowNeg: return Port::kRowPos;
    case Port::kColPos: return Port::kColNeg;
    case Port::kColNeg: return Port::kColPos;
    case Port::kTile: return Port::kTile;
  }
  return Port::kTile;
}

/// One unidirectional inter-router connection.
struct Link {
  NodeId dst = kInvalidNode;
  Port dst_in_port = Port::kTile;  ///< input controller at dst
  double length_mm = 0.0;          ///< physical wire length
};

/// Fully describes one channel for network construction.
struct ChannelDesc {
  NodeId src;
  Port src_out_port;
  NodeId dst;
  Port dst_in_port;
  double length_mm;
};

class Topology {
 public:
  Topology(int radix, double tile_mm) : radix_(radix), tile_mm_(tile_mm) {}
  virtual ~Topology() = default;

  virtual std::string name() const = 0;

  int radix() const { return radix_; }
  int num_nodes() const { return radix_ * radix_; }
  double tile_mm() const { return tile_mm_; }

  NodeId node_at(int x, int y) const { return y * radix_ + x; }
  int x_of(NodeId n) const { return n % radix_; }
  int y_of(NodeId n) const { return n / radix_; }

  /// Downstream connection through the given output port, or nullopt at a
  /// mesh boundary.
  virtual std::optional<Link> neighbor(NodeId n, Port out) const = 0;

  /// True when traversing (n, out) crosses the ring dateline of its
  /// dimension (used by the VC dateline deadlock-avoidance scheme). Always
  /// false for topologies without wraparound.
  virtual bool crosses_dateline(NodeId n, Port out) const { (void)n; (void)out; return false; }

  virtual bool has_wraparound() const = 0;

  /// Unidirectional channels crossing the row bisection (both directions).
  /// Paper section 3.1: the torus has twice the mesh's bisection.
  virtual int bisection_channels() const = 0;

  /// Ring coordinate of node n along dimension `dim` (0=row): the logical
  /// position in ring order, which differs from the physical coordinate in
  /// a folded torus.
  virtual int ring_index(NodeId n, int dim) const;

  /// All channels, for network construction.
  std::vector<ChannelDesc> channels() const;

  /// Minimum hop count between two nodes (BFS over neighbor()); used by
  /// tests and for analytic cross-checks.
  int min_hops(NodeId src, NodeId dst) const;

  /// Mean minimal hop count over all (src,dst) pairs including self-pairs.
  double avg_min_hops() const;

  /// Mean physical link distance (mm) along minimal paths, over all pairs.
  double avg_min_distance_mm() const;

 protected:
  int radix_;
  double tile_mm_;
};

}  // namespace ocn::topo
