#include "topo/torus.h"

namespace ocn::topo {

std::string Torus::name() const { return "torus" + std::to_string(radix_) + "x" + std::to_string(radix_); }

std::optional<Link> Torus::neighbor(NodeId n, Port out) const {
  const int x = x_of(n);
  const int y = y_of(n);
  int nx = x;
  int ny = y;
  bool wrap = false;
  switch (out) {
    case Port::kRowPos:
      nx = (x + 1) % radix_;
      wrap = (x == radix_ - 1);
      break;
    case Port::kRowNeg:
      nx = (x + radix_ - 1) % radix_;
      wrap = (x == 0);
      break;
    case Port::kColPos:
      ny = (y + 1) % radix_;
      wrap = (y == radix_ - 1);
      break;
    case Port::kColNeg:
      ny = (y + radix_ - 1) % radix_;
      wrap = (y == 0);
      break;
    case Port::kTile:
      return std::nullopt;
  }
  const double length = wrap ? tile_mm_ * (radix_ - 1) : tile_mm_;
  return Link{node_at(nx, ny), out, length};
}

bool Torus::crosses_dateline(NodeId n, Port out) const {
  // Dateline sits on the wraparound link of each ring.
  switch (out) {
    case Port::kRowPos: return x_of(n) == radix_ - 1;
    case Port::kRowNeg: return x_of(n) == 0;
    case Port::kColPos: return y_of(n) == radix_ - 1;
    case Port::kColNeg: return y_of(n) == 0;
    case Port::kTile: return false;
  }
  return false;
}

}  // namespace ocn::topo
