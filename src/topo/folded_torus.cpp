#include "topo/folded_torus.h"

#include <cassert>
#include <cmath>

namespace ocn::topo {

FoldedTorus::FoldedTorus(int radix, double tile_mm) : Topology(radix, tile_mm) {
  assert(radix >= 2);
  // Interleaved fold: ascend the evens, descend the odds.
  for (int p = 0; p < radix; p += 2) perm_.push_back(p);
  const int top_odd = (radix % 2 == 0) ? radix - 1 : radix - 2;
  for (int p = top_odd; p >= 1; p -= 2) perm_.push_back(p);
  inv_perm_.assign(radix, 0);
  for (int i = 0; i < radix; ++i) inv_perm_[perm_[i]] = i;
}

std::string FoldedTorus::name() const {
  return "folded_torus" + std::to_string(radix_) + "x" + std::to_string(radix_);
}

int FoldedTorus::ring_index(NodeId n, int dim) const {
  return inv_perm_[dim == 0 ? x_of(n) : y_of(n)];
}

std::optional<Link> FoldedTorus::neighbor(NodeId n, Port out) const {
  if (out == Port::kTile) return std::nullopt;
  const int dim = dim_of(out);
  const int pos = dim == 0 ? x_of(n) : y_of(n);
  const int r = inv_perm_[pos];
  const int next_r = is_positive(out) ? (r + 1) % radix_ : (r + radix_ - 1) % radix_;
  const int next_pos = perm_[next_r];
  const double length = std::abs(next_pos - pos) * tile_mm_;
  const NodeId dst =
      dim == 0 ? node_at(next_pos, y_of(n)) : node_at(x_of(n), next_pos);
  return Link{dst, out, length};
}

bool FoldedTorus::crosses_dateline(NodeId n, Port out) const {
  if (out == Port::kTile) return false;
  const int r = ring_index(n, dim_of(out));
  return is_positive(out) ? r == radix_ - 1 : r == 0;
}

}  // namespace ocn::topo
