#include "topo/topology.h"

#include <cassert>
#include <limits>
#include <tuple>
#include <queue>

namespace ocn::topo {

const char* port_name(Port p) {
  switch (p) {
    case Port::kRowPos: return "row+";
    case Port::kRowNeg: return "row-";
    case Port::kColPos: return "col+";
    case Port::kColNeg: return "col-";
    case Port::kTile: return "tile";
  }
  return "?";
}

int Topology::ring_index(NodeId n, int dim) const {
  return dim == 0 ? x_of(n) : y_of(n);
}

std::vector<ChannelDesc> Topology::channels() const {
  std::vector<ChannelDesc> out;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    for (int p = 0; p < kNumDirPorts; ++p) {
      const auto port = static_cast<Port>(p);
      if (auto link = neighbor(n, port)) {
        out.push_back({n, port, link->dst, link->dst_in_port, link->length_mm});
      }
    }
  }
  return out;
}

int Topology::min_hops(NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  std::vector<int> dist(num_nodes(), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (int p = 0; p < kNumDirPorts; ++p) {
      if (auto link = neighbor(n, static_cast<Port>(p))) {
        if (dist[link->dst] < 0) {
          dist[link->dst] = dist[n] + 1;
          if (link->dst == dst) return dist[link->dst];
          q.push(link->dst);
        }
      }
    }
  }
  assert(false && "topology is disconnected");
  return -1;
}

double Topology::avg_min_hops() const {
  double sum = 0.0;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    for (NodeId d = 0; d < num_nodes(); ++d) sum += min_hops(s, d);
  }
  return sum / (static_cast<double>(num_nodes()) * num_nodes());
}

double Topology::avg_min_distance_mm() const {
  // Among minimal-hop paths, take the one with least physical wire length:
  // Dijkstra on the lexicographic (hops, mm) cost.
  const double inf = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    std::vector<int> hops(num_nodes(), std::numeric_limits<int>::max());
    std::vector<double> mm(num_nodes(), inf);
    using Entry = std::tuple<int, double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    hops[s] = 0;
    mm[s] = 0.0;
    pq.emplace(0, 0.0, s);
    while (!pq.empty()) {
      auto [h, d, n] = pq.top();
      pq.pop();
      if (h > hops[n] || (h == hops[n] && d > mm[n])) continue;
      for (int p = 0; p < kNumDirPorts; ++p) {
        if (auto link = neighbor(n, static_cast<Port>(p))) {
          const int nh = h + 1;
          const double nd = d + link->length_mm;
          if (nh < hops[link->dst] || (nh == hops[link->dst] && nd < mm[link->dst])) {
            hops[link->dst] = nh;
            mm[link->dst] = nd;
            pq.emplace(nh, nd, link->dst);
          }
        }
      }
    }
    for (NodeId d = 0; d < num_nodes(); ++d) sum += mm[d];
  }
  return sum / (static_cast<double>(num_nodes()) * num_nodes());
}

}  // namespace ocn::topo
