// k-ary 2-torus with physically unfolded (loop-back) wiring: adjacent links
// are one tile pitch, the wraparound link spans k-1 pitches. The folded
// variant (folded_torus.h) equalizes wire lengths; this one exists to show
// why folding matters (long wrap wires) and as the logical-torus reference.
#pragma once

#include "topo/topology.h"

namespace ocn::topo {

class Torus final : public Topology {
 public:
  Torus(int radix, double tile_mm) : Topology(radix, tile_mm) {}

  std::string name() const override;
  std::optional<Link> neighbor(NodeId n, Port out) const override;
  bool crosses_dateline(NodeId n, Port out) const override;
  bool has_wraparound() const override { return true; }
  int bisection_channels() const override { return 4 * radix_; }
};

}  // namespace ocn::topo
