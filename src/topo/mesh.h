// k-ary 2-mesh: the power-efficient baseline of paper section 3.1.
#pragma once

#include "topo/topology.h"

namespace ocn::topo {

class Mesh final : public Topology {
 public:
  Mesh(int radix, double tile_mm) : Topology(radix, tile_mm) {}

  std::string name() const override;
  std::optional<Link> neighbor(NodeId n, Port out) const override;
  bool has_wraparound() const override { return false; }
  int bisection_channels() const override { return 2 * radix_; }
};

}  // namespace ocn::topo
