// Access-footprint model of one sharded-kernel tick.
//
// The sharded kernel's safety argument (sim/sharded_kernel.h) is a claim
// about *data flow*: every piece of state two shard workers both touch is a
// channel whose latency puts at least one barrier between the producing
// write and the consuming read. This model makes that data flow explicit so
// the claim can be machine-checked instead of hand-audited — the same
// trial-compute-then-prove discipline the CDG deadlock verifier applies to
// routing, applied to our own parallelism.
//
// The model enumerates, for a Config + wiring + ShardPartition, exactly
// what core::Network::build registers:
//
//   components  every router, NIC, per-shard channel advancer, plus the
//               serial-phase globals (traffic clients/services/monitor and
//               the end-of-tick observer flush);
//   states      every piece of shared mutable state a tick touches: channel
//               delay lines (flit + credit per link, tile ports), per-node
//               router/NIC internals (arbiter pointers, buffers, stats),
//               per-node observer/tracer buffers, and global accumulators
//               (the NIC register-write counter);
//   accesses    who reads/writes each state in which tick phase.
//
// Edges of the footprint graph are (writer, reader) pairs on one state; the
// latency label is the state's delay-line latency — the minimum number of
// barrier crossings separating producer from consumer. The analyzer
// (analyzer.h) walks this graph to prove race-freedom and the determinism
// obligations, and to score partition quality.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/shard_partition.h"

namespace ocn::analyze {

/// Tick phases, in the order the sharded kernel executes them. Accesses in
/// the same parallel phase by different shards are concurrent; everything
/// else is ordered by the barriers between phases.
enum class Phase : int {
  kParallelStep = 0,  ///< phase A: shard workers step their components
  kSerialStep = 1,    ///< phase A tail: globals step on the calling thread
  kAdvance = 2,       ///< phase B: shard workers advance their channels
  kSerialFlush = 3,   ///< end of tick: observer/tracer buffers flush
};

const char* phase_name(Phase p);
/// True for phases executed concurrently by shard workers.
bool parallel_phase(Phase p);

enum class AccessKind { kRead, kWrite };

/// Shard id of work executed serially on the calling thread.
inline constexpr int kSerialShard = -1;

struct Component {
  std::string name;        ///< "router.3", "nic.3", "shard.1.advancer", "clients"
  int shard = kSerialShard;
  double work = 1.0;       ///< static per-tick work estimate (quality verdict)
};

/// One piece of shared mutable state.
struct State {
  std::string name;  ///< "chan.link:3:row+", "router.3.arb", "net.register_writes"

  /// Delay-line semantics: a value written in cycle t becomes readable in
  /// cycle t + latency, i.e. after `latency` advance barriers. Plain shared
  /// state has latency 0 — writes are visible to same-phase readers.
  int latency = 0;

  /// True for channel delay lines advanced in the kAdvance phase.
  bool channel = false;
  /// Executor of the advance (the shard whose worker calls advance()).
  int advance_shard = kSerialShard;
  /// True when the partition classifies this channel as shard-crossing and
  /// therefore advanced *unconditionally* at the barrier. A cross-shard
  /// channel left gated ("interior") would consult its active flag — a
  /// relaxed atomic written by both endpoint shards in the same phase whose
  /// transient value is unordered — so the analyzer rejects that shape.
  bool boundary = false;

  /// Relaxed-atomic accumulator whose parallel-phase mutations commute
  /// (counter increments): racing writers are benign, but any parallel-phase
  /// *read* would observe an unordered partial value.
  bool atomic_commutative = false;
};

struct Access {
  int component = -1;
  int state = -1;
  Phase phase = Phase::kParallelStep;
  AccessKind kind = AccessKind::kRead;
};

/// A named determinism obligation: a claim about the tick that must hold
/// for bit-identical N-shard execution, together with the states it covers.
/// The analyzer derives each state's proof from the access pattern alone
/// (shard-local / serial-phase / barrier slack / ordered flush / atomic
/// commutative); a state that fits no proof rule refutes the obligation.
struct ObligationSpec {
  std::string name;   ///< stable tag, e.g. "observer-flush-order"
  std::string claim;  ///< human-readable statement of the obligation
  std::vector<int> states;
};

struct FootprintModel {
  core::ShardPartition partition{core::ShardPartition::single(1)};
  core::Config config;

  std::vector<Component> components;
  std::vector<State> states;
  std::vector<Access> accesses;
  std::vector<ObligationSpec> obligations;

  int add_component(std::string name, int shard, double work);
  int add_state(State s);
  void access(int component, int state, Phase phase, AccessKind kind);

  /// Executor shard of an access: the component's shard for step phases,
  /// the state's advance_shard for kAdvance.
  int executor_shard(const Access& a) const;

  /// "router.3 (shard 0)" — witness-path rendering helpers.
  std::string describe_component(int id) const;
  std::string describe_state(int id) const;
};

/// Build the footprint of one tick of core::Network(config) under the given
/// partition, mirroring Network::build's component/channel classification.
/// Unlike the Network constructor this never rejects the configuration
/// (Config::validate is not consulted): unbuildable systems — a zero-latency
/// link, say — are modelled faithfully so the analyzer can *explain* what
/// breaks, the same stance verify::verify takes on dateline-free tori.
FootprintModel build_footprint(const core::Config& config,
                               const core::ShardPartition& partition);

/// Deliberate corruptions, used by the golden-rejection tests and the
/// ocn-analyze --break flag. Each produces a model whose flaw the analyzer
/// must catch — and whose dynamic counterpart demonstrably diverges
/// (tests/test_analyze.cpp runs both sides).
enum class BreakKind {
  /// Every cross-shard channel's latency forced to 0: same-cycle visibility
  /// across the barrier, the canonical shard race.
  kZeroLatencyCross,
  /// A parallel-phase component that mutates (and reads) one global
  /// non-atomic accumulator from every shard.
  kGlobalMutator,
  /// Cross-shard channels classified interior, so their active flag gates
  /// advance() despite being written by two shards.
  kGatedBoundary,
};

const char* break_kind_name(BreakKind k);

void corrupt(FootprintModel& model, BreakKind kind);

}  // namespace ocn::analyze
