#include "analyze/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace ocn::analyze {

using verify::Finding;
using verify::Severity;

const char* proof_name(Proof p) {
  switch (p) {
    case Proof::kShardLocal: return "shard-local";
    case Proof::kSerialPhase: return "serial-phase";
    case Proof::kOrderedFlush: return "ordered-flush";
    case Proof::kBarrierSlack: return "barrier-slack";
    case Proof::kAtomicCommutative: return "atomic-commutative";
    case Proof::kReadShared: return "read-shared";
    case Proof::kRefuted: return "refuted";
  }
  return "?";
}

bool AnalysisReport::ok() const {
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) return false;
  }
  return suppressed_findings == 0;
}

namespace {

/// Per-state access summary extracted in one pass over the model.
struct StateUse {
  std::vector<int> par_writes;   ///< kParallelStep write access indices
  std::vector<int> par_reads;    ///< kParallelStep read access indices
  bool flush_read = false;       ///< read during kSerialFlush
  bool serial_access = false;    ///< any kSerialStep/kSerialFlush access
  std::vector<int> par_shards;   ///< distinct executor shards, kParallelStep
};

void note_shard(std::vector<int>& shards, int s) {
  if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
    shards.push_back(s);
  }
}

struct Analysis {
  const FootprintModel& m;
  AnalysisReport& report;
  std::vector<StateUse> use;
  std::vector<Proof> proof;

  void add_finding(Severity severity, std::string code, std::string message) {
    if (static_cast<int>(report.findings.size()) < AnalysisReport::kMaxFindings) {
      report.findings.push_back(Finding{severity, std::move(code), std::move(message)});
    } else {
      ++report.suppressed_findings;
    }
  }

  /// "A (shard 0) --write[parallel step]--> S --read[parallel step]--> B
  /// (shard 1)" — the witness path's spine.
  std::string edge_path(int sid, int writer_access, int reader_access) const {
    const Access& w = m.accesses[static_cast<std::size_t>(writer_access)];
    const Access& r = m.accesses[static_cast<std::size_t>(reader_access)];
    return m.describe_component(w.component) + " --write[" +
           phase_name(w.phase) + "]--> " + m.describe_state(sid) +
           " --read[" + phase_name(r.phase) + "]--> " +
           m.describe_component(r.component);
  }

  /// A parallel writer and a parallel access from a different shard, for
  /// witness rendering; {-1,-1} when none exists.
  std::pair<int, int> cross_pair(int sid) const {
    const StateUse& u = use[static_cast<std::size_t>(sid)];
    for (const int w : u.par_writes) {
      const int ws = m.executor_shard(m.accesses[static_cast<std::size_t>(w)]);
      for (const int r : u.par_reads) {
        if (m.executor_shard(m.accesses[static_cast<std::size_t>(r)]) != ws) {
          return {w, r};
        }
      }
      for (const int w2 : u.par_writes) {
        if (m.executor_shard(m.accesses[static_cast<std::size_t>(w2)]) != ws) {
          return {w, w2};
        }
      }
    }
    return {-1, -1};
  }

  Proof classify_channel(int sid) {
    const State& s = m.states[static_cast<std::size_t>(sid)];
    const StateUse& u = use[static_cast<std::size_t>(sid)];
    const bool cross = u.par_shards.size() > 1;
    if (!cross) {
      if (s.latency < 1) {
        add_finding(Severity::kError, "zero-latency-channel",
                    "zero-latency coupling: " +
                        (u.par_writes.empty() || u.par_reads.empty()
                             ? m.describe_state(sid)
                             : edge_path(sid, u.par_writes.front(),
                                         u.par_reads.front())) +
                        ": the receiver observes the sender's same-cycle "
                        "write, so the result depends on component step "
                        "order");
        return Proof::kRefuted;
      }
      return Proof::kShardLocal;
    }
    if (s.latency < 1) {
      const auto [w, r] = cross_pair(sid);
      add_finding(Severity::kError, "cross-shard-race",
                  "cross-shard race: " + edge_path(sid, w, r) +
                      ": the write is visible in the cycle it is made — 0 "
                      "barrier crossings of slack between producer and "
                      "consumer (>= 1 required)");
      return Proof::kRefuted;
    }
    if (!s.boundary) {
      const auto [w, r] = cross_pair(sid);
      std::string path = w >= 0 && r >= 0 ? edge_path(sid, w, r)
                                          : m.describe_state(sid);
      add_finding(Severity::kError, "gated-boundary-channel",
                  "gated boundary channel: " + path +
                      ": classified interior, so its active flag gates "
                      "advance() — but the flag is written by two shards in "
                      "the same phase and its transient value is unordered; "
                      "cross-shard channels must advance unconditionally");
      return Proof::kRefuted;
    }
    return Proof::kBarrierSlack;
  }

  Proof classify_atomic(int sid) {
    const StateUse& u = use[static_cast<std::size_t>(sid)];
    if (!u.par_reads.empty()) {
      const int r = u.par_reads.front();
      add_finding(
          Severity::kError, "atomic-parallel-read",
          "atomic accumulator read in parallel phase: " +
              m.describe_component(
                  m.accesses[static_cast<std::size_t>(r)].component) +
              " reads " + m.describe_state(sid) +
              " during the parallel phase and observes an unordered partial "
              "value; reads must wait for a serial phase");
      return Proof::kRefuted;
    }
    if (!u.par_writes.empty()) return Proof::kAtomicCommutative;
    return Proof::kSerialPhase;
  }

  Proof classify_plain(int sid) {
    const StateUse& u = use[static_cast<std::size_t>(sid)];
    if (u.par_shards.empty()) return Proof::kSerialPhase;
    if (u.par_shards.size() > 1) {
      if (u.par_writes.empty()) return Proof::kReadShared;
      const auto [w, r] = cross_pair(sid);
      add_finding(Severity::kError, "shard-crossing-mutable-state",
                  "shard-crossing mutable state: " +
                      (w >= 0 && r >= 0 ? edge_path(sid, w, r)
                                        : m.describe_state(sid)) +
                      ": plain shared state accessed by two shards in the "
                      "same phase with at least one write — unordered, and "
                      "a data race once the shards run on real threads");
      return Proof::kRefuted;
    }
    if (!u.par_writes.empty() && u.flush_read) return Proof::kOrderedFlush;
    return Proof::kShardLocal;
  }

  void run() {
    const std::size_t ns = m.states.size();
    use.resize(ns);
    proof.assign(ns, Proof::kSerialPhase);

    for (std::size_t i = 0; i < m.accesses.size(); ++i) {
      const Access& a = m.accesses[i];
      StateUse& u = use[static_cast<std::size_t>(a.state)];
      switch (a.phase) {
        case Phase::kParallelStep:
          (a.kind == AccessKind::kWrite ? u.par_writes : u.par_reads)
              .push_back(static_cast<int>(i));
          note_shard(u.par_shards, m.executor_shard(a));
          break;
        case Phase::kAdvance:
          // Channel advances are writes, but every channel has exactly one
          // advancing shard and phase B is barrier-separated from phase A —
          // the advance itself cannot conflict. The cross-shard questions it
          // raises (flag gating, slack) are part of channel classification.
          // A phase-B write to a NON-channel state is an arrival-byte stamp
          // (ChannelBase::notify_wake): fold it into the shard-locality
          // check as if it were a parallel-phase write, so a channel filed
          // under the wrong shard shows up as shard-crossing mutable state
          // on the receiver's wake byte instead of passing silently.
          if (!m.states[static_cast<std::size_t>(a.state)].channel) {
            u.par_writes.push_back(static_cast<int>(i));
            note_shard(u.par_shards, m.executor_shard(a));
          }
          break;
        case Phase::kSerialStep:
        case Phase::kSerialFlush:
          u.serial_access = true;
          if (a.phase == Phase::kSerialFlush && a.kind == AccessKind::kRead) {
            u.flush_read = true;
          }
          break;
      }
    }

    for (std::size_t sid = 0; sid < ns; ++sid) {
      const State& s = m.states[sid];
      Proof p;
      if (s.channel) {
        p = classify_channel(static_cast<int>(sid));
      } else if (s.atomic_commutative) {
        p = classify_atomic(static_cast<int>(sid));
      } else {
        p = classify_plain(static_cast<int>(sid));
      }
      proof[sid] = p;
      if (s.channel && use[sid].par_shards.size() > 1) ++report.cut_channels;
    }
  }
};

}  // namespace

AnalysisReport analyze(const FootprintModel& m) {
  AnalysisReport report;
  report.partition = m.partition.describe();
  report.shards = m.partition.shards();
  report.components = static_cast<int>(m.components.size());
  report.states = static_cast<int>(m.states.size());
  report.accesses = static_cast<int>(m.accesses.size());

  Analysis a{m, report, {}, {}};
  a.run();

  // Footprint-graph edge count: distinct (writer component, reader
  // component) pairs per state, self-edges excluded.
  {
    std::vector<std::pair<int, int>> writers_readers;
    std::vector<std::vector<int>> by_state_w(m.states.size());
    std::vector<std::vector<int>> by_state_r(m.states.size());
    for (const Access& acc : m.accesses) {
      auto& v = acc.kind == AccessKind::kWrite
                    ? by_state_w[static_cast<std::size_t>(acc.state)]
                    : by_state_r[static_cast<std::size_t>(acc.state)];
      v.push_back(acc.component);
    }
    std::int64_t edges = 0;
    std::vector<std::pair<int, int>> pairs;
    for (std::size_t s = 0; s < m.states.size(); ++s) {
      pairs.clear();
      for (const int w : by_state_w[s]) {
        for (const int r : by_state_r[s]) {
          if (w != r) pairs.emplace_back(w, r);
        }
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      edges += static_cast<std::int64_t>(pairs.size());
    }
    report.edges = edges;
  }

  // Discharge the determinism obligations from the per-state proofs.
  for (const ObligationSpec& spec : m.obligations) {
    Obligation ob;
    ob.name = spec.name;
    ob.claim = spec.claim;
    std::vector<std::string> tags;
    bool proven = true;
    for (const int sid : spec.states) {
      const Proof p = a.proof[static_cast<std::size_t>(sid)];
      if (p == Proof::kRefuted) {
        proven = false;
        if (static_cast<int>(ob.witness.size()) < AnalysisReport::kMaxWitness) {
          ob.witness.push_back(m.describe_state(sid));
        }
      } else {
        const std::string tag = proof_name(p);
        if (std::find(tags.begin(), tags.end(), tag) == tags.end()) {
          tags.push_back(tag);
        }
      }
    }
    ob.proven = proven;
    if (!proven) {
      ob.proof = "refuted";
    } else if (tags.empty()) {
      ob.proof = "vacuous";
    } else {
      std::sort(tags.begin(), tags.end());
      for (std::size_t i = 0; i < tags.size(); ++i) {
        ob.proof += (i > 0 ? " + " : "") + tags[i];
      }
    }
    report.obligations.push_back(std::move(ob));
  }

  // Verdicts. Race-freedom is refuted by genuinely concurrent conflicts;
  // a same-shard zero-latency coupling is sequential (no race) but still
  // order-dependent, so it refutes determinism only.
  report.race_free = true;
  for (const Finding& f : report.findings) {
    if (f.code == "cross-shard-race" || f.code == "shard-crossing-mutable-state" ||
        f.code == "atomic-parallel-read" || f.code == "gated-boundary-channel") {
      report.race_free = false;
    }
  }
  if (report.suppressed_findings > 0) report.race_free = false;
  report.deterministic = report.race_free;
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::kError) report.deterministic = false;
  }
  for (const Obligation& ob : report.obligations) {
    if (!ob.proven) report.deterministic = false;
  }

  // Partition quality.
  report.shard_quality.assign(static_cast<std::size_t>(report.shards), {});
  for (int s = 0; s < report.shards; ++s) {
    report.shard_quality[static_cast<std::size_t>(s)].shard = s;
  }
  double total_work = 0.0;
  for (const Component& c : m.components) {
    if (c.shard == kSerialShard) continue;
    ShardQuality& q = report.shard_quality[static_cast<std::size_t>(c.shard)];
    const bool advancer =
        c.name.size() > 9 && c.name.compare(c.name.size() - 9, 9, ".advancer") == 0;
    if (!advancer) ++q.components;
    q.work += c.work;
    total_work += c.work;
  }
  const double mean = total_work / static_cast<double>(report.shards);
  double max_work = 0.0;
  for (const ShardQuality& q : report.shard_quality) {
    max_work = std::max(max_work, q.work);
  }
  report.balance = mean > 0.0 ? max_work / mean : 1.0;

  return report;
}

AnalysisReport analyze_config(const core::Config& config, int shards) {
  const auto topo = config.make_topology();
  const int resolved = core::resolve_shards(shards == 0 ? 1 : shards, config.radix);
  const auto partition = resolved > 1
                             ? core::ShardPartition::row_strips(*topo, resolved)
                             : core::ShardPartition::single(topo->num_nodes());
  return analyze(build_footprint(config, partition));
}

std::string AnalysisReport::to_string() const {
  std::string out;
  out += "concurrency-safety analysis (" + partition + ")\n";
  out += "  footprint graph: " + std::to_string(components) + " components, " +
         std::to_string(states) + " states, " + std::to_string(accesses) +
         " accesses, " + std::to_string(edges) + " edges\n";
  out += std::string("  race-freedom: ") + (race_free ? "PROVEN" : "REFUTED") + "\n";
  out += std::string("  determinism:  ") + (deterministic ? "PROVEN" : "REFUTED") + "\n";
  for (const Finding& f : findings) {
    out += std::string("  [") + verify::severity_name(f.severity) + "] " +
           f.code + ": " + f.message + "\n";
  }
  if (suppressed_findings > 0) {
    out += "  ... and " + std::to_string(suppressed_findings) +
           " further findings suppressed\n";
  }
  for (const Obligation& ob : obligations) {
    out += "  obligation " + ob.name + ": " +
           (ob.proven ? "proven (" + ob.proof + ")" : "REFUTED") + "\n";
    for (const std::string& w : ob.witness) {
      out += "    witness: " + w + "\n";
    }
  }
  out += "  partition quality: cut " + std::to_string(cut_channels) +
         " channels, balance ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", balance);
  out += buf;
  out += "\n";
  for (const ShardQuality& q : shard_quality) {
    std::snprintf(buf, sizeof buf, "%.1f", q.work);
    out += "    shard " + std::to_string(q.shard) + ": " +
           std::to_string(q.components) + " components, work " + buf + "\n";
  }
  return out;
}

obs::Json report_json(const AnalysisReport& report, const core::Config& config,
                      const std::string& cell) {
  obs::Json run = obs::Json::object();
  run.set("cell", cell);
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(config.fingerprint()));
  run.set("config_fingerprint", std::string(buf));
  run.set("config", config.summary());
  run.set("partition", report.partition);
  run.set("shards", report.shards);

  obs::Json graph = obs::Json::object();
  graph.set("components", report.components);
  graph.set("states", report.states);
  graph.set("accesses", report.accesses);
  graph.set("edges", static_cast<std::int64_t>(report.edges));
  run.set("graph", std::move(graph));

  obs::Json verdicts = obs::Json::object();
  verdicts.set("race_free", report.race_free);
  verdicts.set("deterministic", report.deterministic);
  verdicts.set("ok", report.ok());
  run.set("verdicts", std::move(verdicts));

  obs::Json findings = obs::Json::array();
  for (const Finding& f : report.findings) {
    obs::Json j = obs::Json::object();
    j.set("severity", verify::severity_name(f.severity));
    j.set("code", f.code);
    j.set("message", f.message);
    findings.push(std::move(j));
  }
  run.set("findings", std::move(findings));
  run.set("suppressed_findings", report.suppressed_findings);

  obs::Json obligations = obs::Json::array();
  for (const Obligation& ob : report.obligations) {
    obs::Json j = obs::Json::object();
    j.set("name", ob.name);
    j.set("claim", ob.claim);
    j.set("proof", ob.proof);
    j.set("proven", ob.proven);
    if (!ob.witness.empty()) {
      obs::Json w = obs::Json::array();
      for (const std::string& s : ob.witness) w.push(s);
      j.set("witness", std::move(w));
    }
    obligations.push(std::move(j));
  }
  run.set("obligations", std::move(obligations));

  obs::Json quality = obs::Json::object();
  quality.set("cut_channels", report.cut_channels);
  quality.set("balance", report.balance);
  obs::Json shards = obs::Json::array();
  for (const ShardQuality& q : report.shard_quality) {
    obs::Json j = obs::Json::object();
    j.set("shard", q.shard);
    j.set("components", q.components);
    j.set("work", q.work);
    shards.push(std::move(j));
  }
  quality.set("shards", std::move(shards));
  run.set("quality", std::move(quality));
  return run;
}

}  // namespace ocn::analyze
