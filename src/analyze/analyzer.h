// Static concurrency-safety analyzer over the access-footprint graph.
//
// Given a footprint model (footprint.h) of one sharded tick, the analyzer
// emits three machine-checkable verdicts:
//
//   (a) race-freedom — every cross-shard producer/consumer edge crosses the
//       phase barrier with >= 1 cycle of delay-line slack; zero-latency
//       couplings and globally mutated plain state are confined to the
//       serial phases. A failed proof reports the offending component pair
//       as a readable witness path (the concurrency analogue of
//       Cdg::describe_cycle):
//
//         router.1 (shard 0) --write[parallel step]--> chan.link:1:col+
//         [latency 0, boundary] --read[parallel step]--> router.5 (shard 1)
//         : 0 barrier crossings between write and read; >= 1 required
//
//   (b) determinism obligations — the claims bit-identical N-shard
//       execution rests on (observer/tracer flush order, arbiter pointer
//       ownership, stats folding) are each discharged with a proof tag:
//       shard-local, serial-phase, ordered-flush, barrier-slack, or
//       atomic-commutative. An obligation no rule discharges is refuted
//       with the failing state as witness.
//
//   (c) partition quality — per-shard static work estimates, boundary cut
//       size, and the balance ratio, feeding future partitioners beyond
//       row strips.
//
// The report serializes to the ocn-analyze/v1 JSON schema (golden-pinned in
// tests/data/); verify::VerifiedNetwork runs analyze_config before building
// any sharded network, so an unproven partition fails fast — and the
// ocn-diff shard campaign cross-validates the verdicts against dynamic
// truth in both directions.
#pragma once

#include <string>
#include <vector>

#include "analyze/footprint.h"
#include "obs/json.h"
#include "verify/verifier.h"

namespace ocn::analyze {

inline constexpr const char* kAnalyzeSchema = "ocn-analyze/v1";

/// Proof tags the analyzer can discharge an obligation's state with.
enum class Proof {
  kShardLocal,         ///< touched by exactly one shard's workers
  kSerialPhase,        ///< touched only on the calling thread
  kOrderedFlush,       ///< parallel per-owner writes, serial ordered drain
  kBarrierSlack,       ///< channel crossing shards with latency >= 1
  kAtomicCommutative,  ///< racing commutative updates, serially read
  kReadShared,         ///< concurrently read, never written in parallel
  kRefuted,
};

const char* proof_name(Proof p);

struct Obligation {
  std::string name;
  std::string claim;
  /// Distinct proof tags that discharged the obligation's states, joined
  /// with " + " ("shard-local + ordered-flush"); "refuted" when violated.
  std::string proof;
  bool proven = false;
  std::vector<std::string> witness;  ///< failing states (capped)
};

struct ShardQuality {
  int shard = 0;
  int components = 0;  ///< routers + NICs stepped by this shard
  double work = 0.0;   ///< static per-tick work estimate
};

struct AnalysisReport {
  /// Error findings refute the safety proof; reuses the verifier's
  /// severity/code/message shape so tooling handles both.
  std::vector<verify::Finding> findings;
  /// Findings beyond kMaxFindings are counted here, not stored.
  int suppressed_findings = 0;

  bool race_free = false;
  bool deterministic = false;
  std::vector<Obligation> obligations;

  // --- partition quality -----------------------------------------------------
  std::vector<ShardQuality> shard_quality;
  int cut_channels = 0;   ///< channel states whose endpoints straddle shards
  double balance = 1.0;   ///< max shard work / mean shard work

  // --- graph size ------------------------------------------------------------
  int components = 0;
  int states = 0;
  int accesses = 0;
  std::int64_t edges = 0;  ///< writer->reader pairs over all states

  std::string partition;  ///< ShardPartition::describe()
  int shards = 1;

  /// The proof succeeded: no error finding (warnings allowed).
  bool ok() const;
  std::string to_string() const;

  static constexpr int kMaxFindings = 32;
  static constexpr int kMaxWitness = 4;
};

/// Analyze an explicit footprint model.
AnalysisReport analyze(const FootprintModel& model);

/// Convenience: build the row-strip footprint of `config` at `shards` and
/// analyze it — the exact partition core::Network(config, shards) executes.
/// Never throws on bad configs (they are analyzed, not validated).
AnalysisReport analyze_config(const core::Config& config, int shards);

/// One run object of the ocn-analyze/v1 schema ("cell" names the run in
/// multi-run documents; fingerprint binds it to the analyzed config).
obs::Json report_json(const AnalysisReport& report, const core::Config& config,
                      const std::string& cell);

}  // namespace ocn::analyze
