#include "analyze/footprint.h"

#include <utility>

namespace ocn::analyze {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kParallelStep: return "parallel step";
    case Phase::kSerialStep: return "serial step";
    case Phase::kAdvance: return "channel advance";
    case Phase::kSerialFlush: return "serial flush";
  }
  return "?";
}

bool parallel_phase(Phase p) {
  return p == Phase::kParallelStep || p == Phase::kAdvance;
}

const char* break_kind_name(BreakKind k) {
  switch (k) {
    case BreakKind::kZeroLatencyCross: return "zero-latency-cross";
    case BreakKind::kGlobalMutator: return "global-mutator";
    case BreakKind::kGatedBoundary: return "gated-boundary";
  }
  return "?";
}

int FootprintModel::add_component(std::string name, int shard, double work) {
  components.push_back(Component{std::move(name), shard, work});
  return static_cast<int>(components.size()) - 1;
}

int FootprintModel::add_state(State s) {
  states.push_back(std::move(s));
  return static_cast<int>(states.size()) - 1;
}

void FootprintModel::access(int component, int state, Phase phase, AccessKind kind) {
  accesses.push_back(Access{component, state, phase, kind});
}

int FootprintModel::executor_shard(const Access& a) const {
  // A channel's advance runs on its own advancing shard. An arrival-byte
  // stamp (kAdvance write to a non-channel state) runs on whatever shard's
  // advancer issued it — the component's shard — which is how a mis-filed
  // channel is caught: its stamp lands on a wake byte owned by another
  // shard.
  if (a.phase == Phase::kAdvance &&
      states[static_cast<std::size_t>(a.state)].channel) {
    return states[static_cast<std::size_t>(a.state)].advance_shard;
  }
  return components[static_cast<std::size_t>(a.component)].shard;
}

std::string FootprintModel::describe_component(int id) const {
  const Component& c = components[static_cast<std::size_t>(id)];
  if (c.shard == kSerialShard) return c.name + " (serial)";
  return c.name + " (shard " + std::to_string(c.shard) + ")";
}

std::string FootprintModel::describe_state(int id) const {
  const State& s = states[static_cast<std::size_t>(id)];
  std::string d = s.name;
  if (s.channel) {
    d += " [latency " + std::to_string(s.latency) +
         (s.boundary ? ", boundary" : ", interior") + "]";
  } else if (s.atomic_commutative) {
    d += " [atomic accumulator]";
  } else if (s.latency == 0) {
    d += " [plain state]";
  }
  return d;
}

namespace {

// Static per-tick work estimates for the quality verdict. Unitless; chosen
// so a router (which sweeps every port's VC state each active cycle)
// dominates a NIC, and a channel advance is the cheap fast-path test.
double router_work(const core::Config& c) {
  return static_cast<double>(topo::kNumPorts * c.router.vcs);
}
constexpr double kNicWork = 4.0;
constexpr double kChannelWork = 1.0;

}  // namespace

FootprintModel build_footprint(const core::Config& config,
                               const core::ShardPartition& partition) {
  FootprintModel m;
  m.partition = partition;
  m.config = config;

  const auto topo = config.make_topology();
  const int n = topo->num_nodes();
  const int shards = partition.shards();

  // --- components, mirroring Network::build registration order -------------
  std::vector<int> nic_of(static_cast<std::size_t>(n));
  std::vector<int> router_of(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const int s = partition.shard_of(i);
    nic_of[static_cast<std::size_t>(i)] =
        m.add_component("nic." + std::to_string(i), s, kNicWork);
    router_of[static_cast<std::size_t>(i)] =
        m.add_component("router." + std::to_string(i), s, router_work(config));
  }
  // Per-shard channel advancers (phase B executors).
  std::vector<int> advancer(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    advancer[static_cast<std::size_t>(s)] =
        m.add_component("shard." + std::to_string(s) + ".advancer", s, 0.0);
  }
  // Serial-phase globals: traffic clients/services/monitor (whatever is
  // registered in the global kernel steps here), and the end-of-tick
  // observer/tracer flush the sharded network runs in node order.
  const int clients = m.add_component("clients", kSerialShard, 0.0);
  const int flusher = m.add_component("observer-flush", kSerialShard, 0.0);

  // --- per-node internal state ---------------------------------------------
  // router.N.pool is the node's RouterStatePool slot: the SoA rows holding
  // every per-VC field (buffer counts, routing decisions, credits, allocator
  // flags, pipeline stage, per-cycle transients) that the object layer views
  // into. One state suffices because the whole slot has one owner — the
  // router component on the node's shard.
  std::vector<int> arb_state(static_cast<std::size_t>(n));
  std::vector<int> router_state(static_cast<std::size_t>(n));
  std::vector<int> nic_state(static_cast<std::size_t>(n));
  std::vector<int> router_wake(static_cast<std::size_t>(n));
  std::vector<int> nic_wake(static_cast<std::size_t>(n));
  std::vector<int> delivery_buf(static_cast<std::size_t>(n));
  std::vector<int> trace_buf(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const std::string node = std::to_string(i);
    const int s = partition.shard_of(i);
    arb_state[static_cast<std::size_t>(i)] =
        m.add_state(State{"router." + node + ".arb", 0, false, kSerialShard, false, false});
    router_state[static_cast<std::size_t>(i)] =
        m.add_state(State{"router." + node + ".pool", 0, false, kSerialShard, false, false});
    nic_state[static_cast<std::size_t>(i)] =
        m.add_state(State{"nic." + node + ".state", 0, false, kSerialShard, false, false});
    // Per-port arrival bytes (the pool's wake row / the NIC's arrival
    // flags): stamped by the phase-B advance of each incoming channel,
    // scanned by the kernel's event-skip test and read/cleared by the
    // receiving component in phase A. The stamping accesses are added by
    // add_channel below; here the receiver's own step accesses.
    router_wake[static_cast<std::size_t>(i)] =
        m.add_state(State{"router." + node + ".wake_row", 0, false, s, false, false});
    nic_wake[static_cast<std::size_t>(i)] =
        m.add_state(State{"nic." + node + ".wake", 0, false, s, false, false});
    delivery_buf[static_cast<std::size_t>(i)] =
        m.add_state(State{"nic." + node + ".delivery_buffer", 0, false, kSerialShard, false, false});
    trace_buf[static_cast<std::size_t>(i)] =
        m.add_state(State{"router." + node + ".trace_buffer", 0, false, kSerialShard, false, false});

    const int nic = nic_of[static_cast<std::size_t>(i)];
    const int rtr = router_of[static_cast<std::size_t>(i)];
    // Routers own their arbiter/allocator rotation pointers and pipeline
    // state outright; NICs own their queues, stats and delivery path. The
    // NIC's register-write filter pokes its own router's reservation tables
    // (same node, hence same shard).
    m.access(rtr, arb_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kRead);
    m.access(rtr, arb_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(rtr, router_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kRead);
    m.access(rtr, router_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(nic, router_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(nic, nic_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kRead);
    m.access(nic, nic_state[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    // Delivery observer callbacks land in the node's buffer during the
    // parallel phase; tracer hooks likewise per router. Both flush serially.
    // The receiver probes its arrival bytes and clears them as it consumes
    // (read + write, phase A).
    m.access(rtr, router_wake[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kRead);
    m.access(rtr, router_wake[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(nic, nic_wake[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kRead);
    m.access(nic, nic_wake[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(nic, delivery_buf[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(rtr, trace_buf[static_cast<std::size_t>(i)], Phase::kParallelStep, AccessKind::kWrite);
    m.access(flusher, delivery_buf[static_cast<std::size_t>(i)], Phase::kSerialFlush, AccessKind::kRead);
    m.access(flusher, trace_buf[static_cast<std::size_t>(i)], Phase::kSerialFlush, AccessKind::kRead);
    // The serial-phase globals drive NICs (injection) and read stats.
    m.access(clients, nic_state[static_cast<std::size_t>(i)], Phase::kSerialStep, AccessKind::kRead);
    m.access(clients, nic_state[static_cast<std::size_t>(i)], Phase::kSerialStep, AccessKind::kWrite);
  }

  // --- global accumulators ---------------------------------------------------
  // NIC register-write filters bump one shared counter from the parallel
  // phase: modelled as the atomic commutative accumulator it is.
  const int reg_counter = m.add_state(
      State{"net.register_writes_applied", 0, false, kSerialShard, false, true});
  for (NodeId i = 0; i < n; ++i) {
    m.access(nic_of[static_cast<std::size_t>(i)], reg_counter, Phase::kParallelStep,
             AccessKind::kWrite);
  }
  m.access(clients, reg_counter, Phase::kSerialStep, AccessKind::kRead);
  // The harness/monitor's own state (RNGs, fold buffers) lives with the
  // serial clients component.
  const int harness_state =
      m.add_state(State{"global.harness", 0, false, kSerialShard, false, false});
  m.access(clients, harness_state, Phase::kSerialStep, AccessKind::kRead);
  m.access(clients, harness_state, Phase::kSerialStep, AccessKind::kWrite);

  // --- channels --------------------------------------------------------------
  // One state per delay line, carrying sender (write, phase A), receiver
  // (read, phase A) and the phase-B advance by the classifying shard —
  // exactly Network::build's add_channel: interior when both endpoints
  // share a shard, boundary (advanced by the *receiver's* shard,
  // unconditionally) otherwise. Sender/receiver are per channel direction:
  // a link's credit channel flows dst -> src, so it is filed under
  // shard_of(src) while the flit channel is filed under shard_of(dst).
  // Each advance also stamps the receiving component's arrival byte
  // (ChannelBase::notify_wake), modelled as a phase-B write to the wake
  // state — the analyzer folds it into the shard-locality check, which is
  // what makes the receiver-shard filing invariant a proven property rather
  // than a comment.
  std::vector<int> chan_states;
  const auto add_channel = [&](const std::string& name, NodeId sender_node,
                               NodeId receiver_node, int latency, int sender,
                               int receiver, int wake) {
    const int s_snd = partition.shard_of(sender_node);
    const int s_rcv = partition.shard_of(receiver_node);
    State st;
    st.name = "chan." + name;
    st.latency = latency;
    st.channel = true;
    st.boundary = s_snd != s_rcv;
    st.advance_shard = s_rcv;
    const int adv = st.advance_shard;
    const int id = m.add_state(std::move(st));
    chan_states.push_back(id);
    m.access(sender, id, Phase::kParallelStep, AccessKind::kWrite);
    m.access(receiver, id, Phase::kParallelStep, AccessKind::kRead);
    m.access(advancer[static_cast<std::size_t>(adv)], id, Phase::kAdvance,
             AccessKind::kWrite);
    m.access(advancer[static_cast<std::size_t>(adv)], wake, Phase::kAdvance,
             AccessKind::kWrite);
    m.components[static_cast<std::size_t>(advancer[static_cast<std::size_t>(adv)])]
        .work += kChannelWork;
    return id;
  };

  for (const auto& desc : topo->channels()) {
    const std::string name = "link:" + std::to_string(desc.src) + ":" +
                             topo::port_name(desc.src_out_port);
    const int src_rtr = router_of[static_cast<std::size_t>(desc.src)];
    const int dst_rtr = router_of[static_cast<std::size_t>(desc.dst)];
    add_channel(name, desc.src, desc.dst, config.link_latency, src_rtr, dst_rtr,
                router_wake[static_cast<std::size_t>(desc.dst)]);
    // Credits flow downstream -> upstream: the upstream router's output
    // controller is the receiver, so the channel files under its shard.
    add_channel(name + ":credit", desc.dst, desc.src, config.link_latency,
                dst_rtr, src_rtr, router_wake[static_cast<std::size_t>(desc.src)]);
  }
  for (NodeId i = 0; i < n; ++i) {
    const std::string node = std::to_string(i);
    const int nic = nic_of[static_cast<std::size_t>(i)];
    const int rtr = router_of[static_cast<std::size_t>(i)];
    const int rw = router_wake[static_cast<std::size_t>(i)];
    const int nw = nic_wake[static_cast<std::size_t>(i)];
    add_channel("inject:" + node, i, i, 1, nic, rtr, rw);
    add_channel("inject_credit:" + node, i, i, 1, rtr, nic, nw);
    add_channel("eject:" + node, i, i, 1, rtr, nic, nw);
    add_channel("eject_credit:" + node, i, i, 1, nic, rtr, rw);
  }

  // --- determinism obligations ----------------------------------------------
  m.obligations.push_back(ObligationSpec{
      "arbiter-pointer-ownership",
      "arbiter and allocator rotation pointers are touched only by their "
      "router's shard",
      arb_state});
  m.obligations.push_back(ObligationSpec{
      "observer-flush-order",
      "delivery-observer callbacks buffer per node and flush serially in "
      "node order after the barrier",
      delivery_buf});
  m.obligations.push_back(ObligationSpec{
      "tracer-flush-order",
      "trace events buffer per router and flush serially in node order "
      "after the barrier",
      trace_buf});
  {
    ObligationSpec stats;
    stats.name = "stats-folding";
    stats.claim =
        "per-node statistics are folded by serial-phase components in a "
        "fixed global order; the one parallel-phase accumulator commutes";
    stats.states.push_back(reg_counter);
    stats.states.push_back(harness_state);
    m.obligations.push_back(std::move(stats));
  }
  m.obligations.push_back(ObligationSpec{
      "channel-barrier-slack",
      "every channel either stays inside one shard or crosses the barrier "
      "with >= 1 cycle of slack and an unconditional advance",
      chan_states});
  {
    // The event-skip hybrid's correctness hinges on receiver-shard filing:
    // the phase-B advance that stamps an arrival byte must run on the same
    // shard whose phase-A step reads and clears it next cycle.
    ObligationSpec wake;
    wake.name = "arrival-byte-filing";
    wake.claim =
        "per-port arrival bytes are stamped only by phase-B advances of the "
        "receiving component's own shard (receiver-shard channel filing) and "
        "read/cleared by that component in phase A";
    wake.states.reserve(static_cast<std::size_t>(2 * n));
    for (NodeId i = 0; i < n; ++i) {
      wake.states.push_back(router_wake[static_cast<std::size_t>(i)]);
      wake.states.push_back(nic_wake[static_cast<std::size_t>(i)]);
    }
    m.obligations.push_back(std::move(wake));
  }

  return m;
}

void corrupt(FootprintModel& model, BreakKind kind) {
  switch (kind) {
    case BreakKind::kZeroLatencyCross:
      for (State& s : model.states) {
        if (s.channel && s.boundary) s.latency = 0;
      }
      return;
    case BreakKind::kGlobalMutator: {
      // A per-shard "stats scraper" stepped inside the parallel phase,
      // all writing one plain global accumulator.
      const int global = model.add_state(
          State{"global.mutable_stats", 0, false, kSerialShard, false, false});
      for (int s = 0; s < model.partition.shards(); ++s) {
        const int c = model.add_component(
            "shard." + std::to_string(s) + ".stats_scraper", s, 0.0);
        model.access(c, global, Phase::kParallelStep, AccessKind::kRead);
        model.access(c, global, Phase::kParallelStep, AccessKind::kWrite);
      }
      // Fold the corrupted state into the stats obligation so the verdict
      // names the obligation it breaks.
      for (ObligationSpec& ob : model.obligations) {
        if (ob.name == "stats-folding") ob.states.push_back(global);
      }
      return;
    }
    case BreakKind::kGatedBoundary:
      for (State& s : model.states) {
        if (s.channel && s.boundary) s.boundary = false;
      }
      return;
  }
}

}  // namespace ocn::analyze
